"""The ``python -m repro`` command line.

Six verbs drive campaigns headless:

* ``repro run`` -- one experiment, optionally recorded in a store;
* ``repro sweep`` -- a design-space campaign against a resumable
  store, with deterministic ``--shard K/N`` fan-out;
* ``repro optimize`` -- width/session co-optimisation of one
  workload, printing the Pareto front and optionally persisting every
  front point into a store;
* ``repro diagnose`` -- a seeded defect-scenario sweep: inject, screen,
  adaptively reconfigure, rank candidates; prints a
  localisation-accuracy and diagnosis-cycles table and resumes from a
  store like ``sweep`` does;
* ``repro report`` -- tabulate one or more stores (run records and
  diagnosis records each get their own table); ``--workload`` /
  ``--architecture`` / ``--scheduler`` filter through the store's
  indexes, and ``--summary`` prints the per-bucket aggregate counts
  without loading a single record;
* ``repro merge`` -- combine shard stores into one canonical store;
* ``repro migrate`` -- copy a store into another backend (JSONL <->
  SQLite), losslessly and in full append order;
* ``repro verify`` -- statically audit stores against the
  :mod:`repro.verify` rule set, printing a diagnostics table and
  exiting non-zero when any record violates its serialization
  contract;
* ``repro profile`` -- run any other verb under the
  :mod:`repro.obs` tracer and print where the time went.

Observability: ``--trace out.jsonl`` on run/sweep/diagnose/optimize
streams every :mod:`repro.obs` span to a JSONL trace (spans observe
runs, they are not part of them -- results and config hashes are
byte-identical with tracing on or off), and ``repro sweep
--dashboard`` renders live progress with rate and ETA.  All human
output flows through :class:`repro.obs.Console`, so ``--quiet`` /
``--verbose`` mean the same thing everywhere and ``--json`` keeps
stdout machine-parseable.

Plus ``repro list`` to discover registered architectures, schedulers
and workloads (``--architectures``/``--schedulers``/``--workloads``
print name, aliases and a one-line description).  Tables print sorted
by config hash, so the report of merged shard stores is byte-identical
to the report of the equivalent unsharded run -- and identical across
store backends (JSONL or SQLite, picked per path by
:func:`repro.campaign.store.open_store`; ``repro sweep
--store-format sqlite`` selects the indexed backend for named
stores).  CI asserts exactly that, on both backends.

Seeded workloads: ``--seed N`` with the pseudo-workloads
``random-soc`` / ``random-cores`` builds
:func:`repro.soc.itc02.random_soc` /
:func:`~repro.soc.itc02.random_test_params` reproducibly from the
command line; the seed shapes the workload's structural identity, so
it lands in every campaign config hash.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ConfigurationError, ReproError
from repro.analysis.tables import format_table
from repro.api.experiment import Experiment
from repro.obs import (
    Console,
    JsonlSink,
    SweepDashboard,
    format_profile,
)
from repro.obs import spans as obs_spans
from repro.obs.timing import stopwatch
from repro.api.registry import (
    ARCHITECTURES,
    SCHEDULERS,
    list_architectures,
    list_schedulers,
)
from repro.api.results import RESULT_HEADERS, RunConfig
from repro.api.workloads import WORKLOADS, get_workload, list_workloads
from repro.campaign.campaign import Campaign
from repro.campaign.hashing import parse_shard
from repro.campaign.store import as_store, merge_stores, migrate_store

#: Leading hash characters shown in tables.
HASH_PREFIX = 10


def _split_csv(text: str) -> "list[str]":
    return [token.strip() for token in text.split(",") if token.strip()]


#: Pseudo-workload names that require ``--seed``.
SEEDED_WORKLOADS = ("random-soc", "random-cores")


def _resolve_workload(name: str, seed: "int | None"):
    """Workload-like for a CLI name, honouring ``--seed``.

    Registered names pass through untouched.  The seeded
    pseudo-workloads build their generator with the seed; the seed
    shapes the generated core names and structure, so it participates
    in every config hash without special-casing the hashing layer.
    """
    key = name.lower().replace("_", "-")
    if key in SEEDED_WORKLOADS:
        if seed is None:
            raise ConfigurationError(f"workload {name!r} is seeded; pass --seed N")
        from repro.soc.itc02 import random_soc, random_test_params

        if key == "random-soc":
            return random_soc(seed)
        return random_test_params(seed)
    if seed is not None:
        raise ConfigurationError(
            f"--seed applies to the seeded workloads "
            f"({', '.join(SEEDED_WORKLOADS)}), not {name!r}"
        )
    return name


def _parse_widths(text: str) -> "list[int | None]":
    """``"8,16,native"`` -> ``[8, 16, None]``."""
    widths: "list[int | None]" = []
    for token in _split_csv(text):
        if token.lower() in ("native", "none", "-"):
            widths.append(None)
        else:
            widths.append(int(token))
    return widths


def _hash_table(pairs) -> str:
    """An aligned table of ``(config_hash, RunResult)`` pairs.

    Rows sort by config hash: the order is a pure function of run
    identity, never of execution or shard order.
    """
    headers = ["config", *RESULT_HEADERS]
    rows = []
    for config_hash, result in sorted(pairs, key=lambda pair: pair[0]):
        metrics = result.metrics()
        row = [config_hash[:HASH_PREFIX]]
        row.extend(metrics[key] for key in RESULT_HEADERS)
        rows.append(row)
    return format_table(headers, rows)


def _progress_printer(args, console: Console):
    if not getattr(args, "verbose", False):
        return None

    def echo(experiment, result, *, cached, elapsed):
        state = "cached  " if cached else f"{elapsed:8.3f}s"
        console.detail(
            f"  {experiment.config_hash()[:HASH_PREFIX]}  {state}  "
            f"{result.workload} / {result.architecture}"
        )

    return echo


def _compose_progress(*callbacks):
    """One ``on_result`` fanning out to every non-``None`` callback."""
    active = [callback for callback in callbacks if callback is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def fanout(experiment, result, *, cached, elapsed):
        for callback in active:
            callback(experiment, result, cached=cached, elapsed=elapsed)

    return fanout


# -- verbs -----------------------------------------------------------------


def cmd_run(args) -> int:
    console = Console.from_args(args)
    config = RunConfig(
        architecture=args.architecture,
        scheduler=args.scheduler,
        bus_width=args.bus_width,
        cas_policy=args.policy,
        simulate=False if args.model_only else None,
        backend=args.backend,
        verify=not args.no_verify,
        label=args.label,
    )
    experiment = Experiment(_resolve_workload(args.workload, args.seed), config)
    if args.store is None:
        result = experiment.run()
        cached = False
    else:
        from repro.api.runner import run_many

        outcome = {}

        def note(_experiment, run_result, *, cached, elapsed):
            outcome["cached"] = cached

        store = as_store(args.store)
        result = run_many(
            [experiment],
            parallel=False,
            store=store,
            rerun=args.rerun,
            on_result=note,
        )[0]
        cached = outcome.get("cached", False)
    if args.json:
        payload = dict(result.to_dict(), hash=experiment.config_hash())
        console.json(payload)
    else:
        console.result(_hash_table([(experiment.config_hash(), result)]))
        if cached:
            console.info("(cached result; pass --rerun to execute again)")
    return 0


def cmd_sweep(args) -> int:
    console = Console.from_args(args)
    store = as_store(args.store) if args.store else None
    campaign = Campaign.sweep(
        args.campaign,
        [_resolve_workload(name, args.seed) for name in args.workloads],
        architectures=_split_csv(args.architectures),
        bus_widths=_parse_widths(args.bus_widths),
        schedulers=_split_csv(args.schedulers),
        base_config=RunConfig(backend=args.backend, verify=not args.no_verify),
        store=store,
        store_dir=args.store_dir,
        backend=args.store_format,
    )
    shard = parse_shard(args.shard) if args.shard else None
    dashboard = None
    dashboard_progress = None
    if args.dashboard:
        dashboard = SweepDashboard(len(campaign.selected_hashes(shard)))

        def dashboard_progress(experiment, result, *, cached, elapsed):
            dashboard.update(
                executed=0 if cached else 1, cached=1 if cached else 0
            )

    try:
        report = campaign.run(
            shard=shard,
            parallel=not args.serial,
            max_workers=args.max_workers,
            rerun=args.rerun,
            on_result=_compose_progress(
                dashboard_progress, _progress_printer(args, console)
            ),
        )
    finally:
        if dashboard is not None:
            dashboard.finish()
    console.result(report.summary())
    if not args.quiet:
        pairs = zip(campaign.selected_hashes(shard), report.results)
        console.result(_hash_table(list(pairs)))
    return 0


#: Column order of the ``repro diagnose`` / diagnosis-report table.
DIAGNOSIS_HEADERS = (
    "config",
    "workload",
    "scenario",
    "failing",
    "localized",
    "rank",
    "screen cyc",
    "diag cyc",
    "full cyc",
)


def _diagnosis_row(config_hash: str, result) -> "list[object]":
    scenario = result.scenario
    rank = result.scenario_rank()
    return [
        config_hash[:HASH_PREFIX],
        result.workload,
        scenario.describe() if scenario else "(none)",
        len(result.failing_cores),
        result.localized_core or "-",
        "-" if rank is None else rank,
        result.screening_cycles,
        result.diagnosis_cycles,
        result.full_retest_cycles,
    ]


def _diagnosis_table(pairs) -> str:
    rows = [
        _diagnosis_row(config_hash, result)
        for config_hash, result in sorted(pairs, key=lambda p: p[0])
    ]
    return format_table(DIAGNOSIS_HEADERS, rows)


#: Column order of the ``repro report --summary`` aggregate table.
SUMMARY_HEADERS = ("kind", "workload", "architecture", "scheduler", "runs")


def _report_summary(stores, console: Console) -> int:
    """The aggregate table: no record is loaded, let alone parsed.

    On the SQLite backend this reads the transactionally maintained
    ``aggregates`` table -- O(buckets) however many records the
    campaign holds; on JSONL it falls back to the one scan the format
    always costs.
    """
    totals: "dict[tuple, int]" = {}
    for store in stores:
        for bucket, count in store.aggregate_counts().items():
            totals[bucket] = totals.get(bucket, 0) + count
    rows = [
        [part if part is not None else "-" for part in bucket]
        + [totals[bucket]]
        for bucket in sorted(
            totals, key=lambda key: tuple(part or "" for part in key)
        )
    ]
    console.result(format_table(SUMMARY_HEADERS, rows))
    console.result(
        f"{sum(totals.values())} record(s) from {len(stores)} store(s)"
    )
    return 0


def cmd_report(args) -> int:
    from repro.diagnose.records import is_diagnosis_record

    console = Console.from_args(args)
    stores = [as_store(source) for source in args.stores]
    if args.summary:
        return _report_summary(stores, console)
    filtered = any(
        value is not None
        for value in (args.workload, args.architecture, args.scheduler)
    )
    # One load per store, shared by every rendering below (the JSON
    # dump, the run table, the diagnosis table and the trailing
    # counts): records are read and parsed exactly once per report.
    merged = {}
    skipped = 0
    for store in stores:
        before = len(merged)
        watch = stopwatch()
        if filtered:
            for record in store.iter_latest(
                workload=args.workload,
                architecture=args.architecture,
                scheduler=args.scheduler,
            ):
                merged[record["hash"]] = record
        else:
            merged.update(store.latest())
        # Long scans on large stores used to be silent; --verbose now
        # narrates each store as it is read.
        console.detail(
            f"  {store.path}: {len(merged) - before} new record(s) "
            f"in {watch.elapsed:.3f}s"
        )
        skipped += store.skipped_lines
    if skipped:
        console.warn(f"warning: skipped {skipped} malformed line(s)")
    if args.json:
        records = [merged[h] for h in sorted(merged)]
        console.json(records)
        return 0
    from repro.api.results import RunResult
    from repro.diagnose.records import result_from_record

    run_pairs = []
    diagnosis_pairs = []
    for config_hash, record in merged.items():
        if is_diagnosis_record(record):
            diagnosis_pairs.append((config_hash, result_from_record(record)))
        else:
            run_pairs.append((config_hash, RunResult.from_dict(record["result"])))
    if run_pairs or not diagnosis_pairs:
        console.result(_hash_table(run_pairs))
    if diagnosis_pairs:
        if run_pairs:
            console.result()
        console.result(_diagnosis_table(diagnosis_pairs))
    console.result(
        f"{len(run_pairs)} run(s), {len(diagnosis_pairs)} diagnosis "
        f"record(s) from {len(args.stores)} store(s)"
    )
    return 0


def cmd_diagnose(args) -> int:
    from repro.diagnose.inject import random_scenario
    from repro.diagnose.records import (
        diagnosis_hash,
        is_diagnosis_record,
        make_diagnosis_record,
        result_from_record,
    )

    console = Console.from_args(args)
    config = RunConfig(
        cas_policy=args.policy,
        backend=args.backend,
        label=args.label,
    )
    experiment = Experiment(_resolve_workload(args.workload, args.seed), config)
    soc = experiment.workload.soc
    if soc is None:
        raise ConfigurationError(
            f"workload {experiment.workload.name!r} is abstract core "
            f"parameters; diagnosis needs a simulatable SocSpec "
            f"(try the itc02-*-soc variants)"
        )
    try:
        seeds = [int(token) for token in _split_csv(args.scenarios)]
    except ValueError:
        raise ConfigurationError(
            f"--scenarios wants a comma list of integer seeds, "
            f"got {args.scenarios!r}"
        ) from None
    if not seeds:
        raise ConfigurationError("--scenarios selected no seeds")
    store = as_store(args.store) if args.store else None
    scenarios = [
        (random_scenario(soc, scenario_seed), scenario_seed)
        for scenario_seed in seeds
    ]
    hashes = [
        diagnosis_hash(experiment, scenario) for scenario, _ in scenarios
    ]
    # Ask the store only about this sweep's own hashes: an indexed
    # lookup on SQLite, one scan on JSONL -- never a full latest().
    stored = store.lookup(hashes) if store else {}
    pairs = []
    localized = 0
    in_top5 = 0
    diagnosis_total = 0
    full_total = 0
    for (scenario, scenario_seed), record_hash in zip(scenarios, hashes):
        record = stored.get(record_hash)
        if record is not None and is_diagnosis_record(record) and not args.rerun:
            result = result_from_record(record)
            console.detail(f"  {record_hash[:HASH_PREFIX]}  cached")
        else:
            with obs_spans.span("diagnose.scenario", seed=scenario_seed):
                with stopwatch() as watch:
                    result = experiment.diagnose(scenario)
            elapsed = watch.seconds
            console.detail(
                f"  {record_hash[:HASH_PREFIX]}  {elapsed:8.3f}s  "
                f"seed {scenario_seed}"
            )
            if store is not None:
                with obs_spans.span(
                    "store.append", config_hash=record_hash[:HASH_PREFIX]
                ):
                    store.append(
                        make_diagnosis_record(
                            experiment,
                            scenario,
                            result,
                            elapsed_s=elapsed,
                            config_hash=record_hash,
                        ),
                        replace=args.rerun,
                    )
        pairs.append((record_hash, result))
        rank = result.scenario_rank()
        if result.localized_core == scenario.core and rank is not None:
            localized += 1
        if rank is not None and rank <= 5:
            in_top5 += 1
        diagnosis_total += result.diagnosis_cycles
        full_total += result.full_retest_cycles
    if args.json:
        payload = [
            dict(result.to_dict(), hash=record_hash)
            for record_hash, result in pairs
        ]
        console.json(payload)
        return 0
    console.result(_diagnosis_table(pairs))
    count = len(pairs)
    mean_diag = diagnosis_total / count
    mean_full = full_total / count
    console.result(
        f"localisation accuracy {localized}/{count}, "
        f"true fault in top-5 {in_top5}/{count}"
    )
    console.result(
        f"mean diagnosis cycles {mean_diag:.0f} vs full re-test "
        f"{mean_full:.0f} ({mean_diag / mean_full:.1%})"
    )
    return 0


def cmd_verify(args) -> int:
    from repro.verify import VerifyReport, verify_store

    console = Console.from_args(args)
    report = VerifyReport()
    for source in args.stores:
        verify_store(as_store(source), report=report)
    failed = bool(report.errors) or (args.strict and bool(report.warnings))
    if args.json:
        payload = {
            "checked": report.checked,
            "ok": not failed,
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
        console.json(payload)
        return 1 if failed else 0
    if report.diagnostics:
        console.result(report.table())
    console.result(report.summary())
    return 1 if failed else 0


def cmd_merge(args) -> int:
    console = Console.from_args(args)
    target = merge_stores(args.stores, args.out)
    count = len(target)
    console.result(
        f"merged {len(args.stores)} store(s) -> {target.path} ({count} runs)"
    )
    return 0


def cmd_migrate(args) -> int:
    console = Console.from_args(args)
    target = migrate_store(args.store, args.out)
    console.result(
        f"migrated {args.store} -> {target.path} "
        f"({len(target)} runs, {target.format})"
    )
    return 0


#: Column order of the ``repro optimize`` Pareto table.
PARETO_HEADERS = (
    "N",
    "config bits",
    "sessions",
    "test cycles",
    "config cycles",
    "total cycles",
    "",
)


def _pareto_row(point, bus_width) -> "list[object]":
    return [
        point.bus_width,
        point.config_bits,
        point.sessions,
        point.test_cycles,
        point.config_cycles,
        point.total_cycles,
        "*" if point.bus_width == bus_width else "",
    ]


def cmd_optimize(args) -> int:
    from repro.api.runner import run_many
    from repro.schedule.optimize import BNB_MAX_CORES, co_optimize

    console = Console.from_args(args)
    workload = get_workload(args.workload)
    width = (
        args.bus_width if args.bus_width is not None else workload.bus_width
    )
    if width is None:
        message = (
            f"workload {workload.name!r} has no intrinsic bus width; "
            f"pass --bus-width"
        )
        raise ConfigurationError(message)
    widths = None
    if args.widths:
        widths = [int(token) for token in _split_csv(args.widths)]
    method = args.method
    if method == "auto":
        if args.portfolio is not None or args.jobs > 1:
            method = "portfolio"
        elif len(workload.cores) <= BNB_MAX_CORES:
            method = "bnb"
        else:
            method = "anneal"
    progress = None
    if args.verbose and method == "portfolio":

        def progress(event):
            console.detail(
                "  round {round}  N={width:>3}  {strategy}[{variant}]  "
                "total={total}  best={best}".format(**event)
            )

    outcome = co_optimize(
        workload.cores,
        width,
        method=method,
        widths=widths,
        cas_policy=args.policy,
        seed=args.seed,
        restarts=args.restarts,
        portfolio=args.portfolio,
        jobs=args.jobs,
        budget=args.budget,
        progress=progress,
    )
    if args.json:
        # Deliberately excludes --jobs: the payload is a pure function
        # of the search inputs, so CI can diff --jobs 1 vs --jobs 4.
        payload = {
            "workload": workload.name,
            "method": outcome.method,
            "bus_width": width,
            "evaluations": outcome.evaluations,
            "cache_stats": outcome.cache_stats,
            "pareto": [point.to_dict() for point in outcome.pareto],
        }
        console.json(payload)
    else:
        console.result(
            f"{workload.name}: {outcome.method} on N={width} -> "
            f"{outcome.total_cycles} total cycles "
            f"({outcome.evaluations} session evaluations)"
        )
        model_stats = outcome.cache_stats.get("cost_model")
        if model_stats:
            console.result(
                "cost-model cache: {hits} hits / {misses} misses "
                "({entries} entries)".format(**model_stats)
            )
        rows = [_pareto_row(point, width) for point in outcome.pareto]
        title = "Pareto front (bus width / config bits / total cycles)"
        console.result(format_table(PARETO_HEADERS, rows, title=title))
        if not args.quiet:
            console.result(outcome.schedule.describe())
    if args.store is None:
        return 0
    # Persist one experiment per front point through the standard
    # store-aware runner: records land under the same config hashes a
    # sweep with this scheduler would produce, so campaigns resume
    # over them.  Each point deliberately re-executes its experiment
    # (seconds at worst) instead of serialising the outcome above --
    # a stored record must be exactly what re-running its config
    # yields, or resume semantics break.
    experiments = [
        Experiment(
            workload,
            RunConfig(
                architecture="casbus",
                scheduler=outcome.method,
                bus_width=point.bus_width,
                cas_policy=args.policy,
                label=args.label,
            ),
        )
        for point in outcome.pareto
    ]
    run_many(
        experiments,
        parallel=False,
        store=as_store(args.store),
        rerun=args.rerun,
    )
    console.result(
        f"persisted {len(experiments)} Pareto point(s) -> {args.store}"
    )
    return 0


def _detail_table(registry) -> str:
    rows = [
        [entry.name, ", ".join(entry.aliases) or "-", entry.description]
        for entry in registry.entries()
    ]
    return format_table(("name", "aliases", "description"), rows)


def cmd_list(args) -> int:
    # Importing repro.api.workloads (above) transitively loads the
    # architecture and scheduler modules, so all three registries are
    # populated by the time any listing runs.
    console = Console.from_args(args)
    detail = (
        ("architectures", ARCHITECTURES, args.architectures),
        ("schedulers", SCHEDULERS, args.schedulers),
        ("workloads", WORKLOADS, args.workloads),
    )
    if any(selected for _, _, selected in detail):
        first = True
        for title, registry, selected in detail:
            if not selected:
                continue
            if not first:
                console.result()
            first = False
            console.result(f"{title}:")
            console.result(_detail_table(registry))
        return 0
    sections = (
        ("architectures", list_architectures()),
        ("schedulers", list_schedulers()),
        ("workloads", list_workloads()),
    )
    for title, names in sections:
        console.result(f"{title}:")
        for name in names:
            console.result(f"  {name}")
    return 0


def cmd_profile(args) -> int:
    """Run any other verb under the tracer, then print the profile."""
    console = Console.from_args(args)
    cmdline = list(args.cmdline)
    if cmdline and cmdline[0] == "--":
        cmdline = cmdline[1:]
    if not cmdline:
        raise ConfigurationError(
            "profile needs a command to run, e.g. "
            "`repro profile sweep itc02-d695 --serial`"
        )
    if cmdline[0] == "profile":
        raise ConfigurationError("profile cannot profile itself")
    with obs_spans.capture() as collector:
        code = main(cmdline)
    console.result("")
    console.result(
        format_profile(collector.spans(), collector.metrics.snapshot())
    )
    return code


# -- parser ----------------------------------------------------------------


def _add_trace_flag(sub) -> None:
    sub.add_argument(
        "--trace",
        default=None,
        metavar="OUT.JSONL",
        help="stream obs spans/metrics to this JSONL trace file",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CAS-BUS experiment campaigns, headless.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("workload", help="registered workload name")
    run.add_argument("-a", "--architecture", default="casbus")
    run.add_argument("-s", "--scheduler", default="greedy")
    run.add_argument("-w", "--bus-width", type=int, default=None)
    run.add_argument("--policy", default=None, help="CAS enumeration policy")
    run.add_argument("--backend", default="auto")
    run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (random-soc / random-cores)",
    )
    run.add_argument("--label", default="")
    run.add_argument(
        "--model-only",
        action="store_true",
        help="forbid cycle-accurate simulation",
    )
    run.add_argument("--store", default=None, help="record into this store")
    run.add_argument("--rerun", action="store_true")
    run.add_argument(
        "--no-verify",
        action="store_true",
        help="skip static verification at the fail-fast boundaries",
    )
    run.add_argument("--json", action="store_true")
    run.add_argument("--quiet", action="store_true")
    run.add_argument("--verbose", action="store_true")
    _add_trace_flag(run)
    run.set_defaults(func=cmd_run)

    sweep = commands.add_parser(
        "sweep",
        help="run a resumable design-space campaign",
    )
    sweep.add_argument("workloads", nargs="+", help="workload name(s)")
    sweep.add_argument("--campaign", default="sweep", help="campaign name")
    sweep.add_argument("--architectures", default="casbus")
    sweep.add_argument("--schedulers", default="greedy")
    sweep.add_argument(
        "--bus-widths",
        default="native",
        help="comma list of widths; 'native' keeps the workload's own",
    )
    sweep.add_argument("--backend", default="auto")
    sweep.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (random-soc / random-cores)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        help="store path (default <store-dir>/<campaign>.jsonl)",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        help="directory for named stores (default artifacts/campaigns)",
    )
    sweep.add_argument(
        "--store-format",
        choices=("jsonl", "sqlite"),
        default="jsonl",
        help="backend for the default named store (ignored with --store, "
        "where the path's suffix decides)",
    )
    sweep.add_argument("--shard", default=None, metavar="K/N")
    sweep.add_argument("--serial", action="store_true")
    sweep.add_argument("--max-workers", type=int, default=None)
    sweep.add_argument("--rerun", action="store_true")
    sweep.add_argument(
        "--no-verify",
        action="store_true",
        help="skip static verification at the fail-fast boundaries",
    )
    sweep.add_argument("--quiet", action="store_true")
    sweep.add_argument("--verbose", action="store_true")
    sweep.add_argument(
        "--dashboard",
        action="store_true",
        help="live progress bar with rate and ETA (stderr)",
    )
    _add_trace_flag(sweep)
    sweep.set_defaults(func=cmd_sweep)

    optimize = commands.add_parser(
        "optimize",
        help="co-optimise TAM width and sessions, report the Pareto front",
    )
    optimize.add_argument("workload", help="registered workload name")
    optimize.add_argument(
        "-w",
        "--bus-width",
        type=int,
        default=None,
        help="pin budget N (default: the workload's own width)",
    )
    optimize.add_argument(
        "--widths",
        default=None,
        help="comma list of candidate widths (default: powers of two up "
        "to N)",
    )
    optimize.add_argument(
        "--method",
        choices=("auto", "bnb", "anneal", "portfolio"),
        default="auto",
        help="search engine: exact branch-and-bound, simulated "
        "annealing, or the multi-start portfolio (auto picks by core "
        "count, or portfolio when --jobs/--portfolio are given)",
    )
    optimize.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the stochastic engines (results are a pure "
        "function of it, never of --jobs)",
    )
    optimize.add_argument(
        "--restarts",
        type=int,
        default=1,
        help="independent anneal restarts per width (anneal method)",
    )
    optimize.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the portfolio; changes wall-clock "
        "only, never the result",
    )
    optimize.add_argument(
        "--budget",
        type=int,
        default=None,
        help="total per-width move budget for the portfolio, split "
        "across its units and rounds",
    )
    optimize.add_argument(
        "--portfolio",
        default=None,
        help="portfolio strategy mix, e.g. 'anneal,genetic,lns' "
        "(implies --method portfolio)",
    )
    optimize.add_argument(
        "--verbose",
        action="store_true",
        help="print one progress line per completed portfolio unit",
    )
    optimize.add_argument("--policy", default=None, help="CAS policy")
    optimize.add_argument("--label", default="")
    optimize.add_argument(
        "--store",
        default=None,
        help="persist every Pareto point into this campaign store",
    )
    optimize.add_argument("--rerun", action="store_true")
    optimize.add_argument("--json", action="store_true")
    optimize.add_argument(
        "--quiet",
        action="store_true",
        help="omit the per-session schedule dump",
    )
    _add_trace_flag(optimize)
    optimize.set_defaults(func=cmd_optimize)

    diagnose = commands.add_parser(
        "diagnose",
        help="inject seeded defects, adaptively localise them",
    )
    diagnose.add_argument("workload", help="simulatable workload name")
    diagnose.add_argument(
        "--scenarios",
        default="0",
        help="comma list of defect-scenario seeds (default: 0)",
    )
    diagnose.add_argument(
        "--seed",
        type=int,
        default=None,
        help="workload seed (random-soc)",
    )
    diagnose.add_argument("--policy", default=None, help="CAS policy")
    diagnose.add_argument("--backend", default="auto")
    diagnose.add_argument("--label", default="")
    diagnose.add_argument(
        "--store",
        default=None,
        help="record/resume diagnosis runs in this store",
    )
    diagnose.add_argument("--rerun", action="store_true")
    diagnose.add_argument("--json", action="store_true")
    diagnose.add_argument("--quiet", action="store_true")
    diagnose.add_argument("--verbose", action="store_true")
    _add_trace_flag(diagnose)
    diagnose.set_defaults(func=cmd_diagnose)

    report = commands.add_parser("report", help="tabulate stores")
    report.add_argument("stores", nargs="+")
    report.add_argument(
        "--workload",
        default=None,
        help="only records for this workload (indexed on sqlite stores)",
    )
    report.add_argument(
        "--architecture",
        default=None,
        help="only records for this architecture",
    )
    report.add_argument(
        "--scheduler",
        default=None,
        help="only records for this scheduler",
    )
    report.add_argument(
        "--summary",
        action="store_true",
        help="per-bucket aggregate counts only, no record loading",
    )
    report.add_argument("--json", action="store_true")
    report.add_argument("--quiet", action="store_true")
    report.add_argument(
        "--verbose",
        action="store_true",
        help="narrate per-store row counts and elapsed read time",
    )
    report.set_defaults(func=cmd_report)

    merge = commands.add_parser("merge", help="merge shard stores")
    merge.add_argument("stores", nargs="+")
    merge.add_argument("-o", "--out", required=True)
    merge.set_defaults(func=cmd_merge)

    migrate = commands.add_parser(
        "migrate",
        help="copy a store into another backend (suffix of -o decides)",
    )
    migrate.add_argument("store", help="source store path")
    migrate.add_argument(
        "-o",
        "--out",
        required=True,
        help="destination path (.jsonl or .sqlite/.sqlite3/.db)",
    )
    migrate.set_defaults(func=cmd_migrate)

    verify = commands.add_parser(
        "verify",
        help="statically audit campaign stores (exit 1 on violations)",
    )
    verify.add_argument("stores", nargs="+")
    verify.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors",
    )
    verify.add_argument("--json", action="store_true")
    verify.set_defaults(func=cmd_verify)

    listing = commands.add_parser("list", help="list registered components")
    listing.add_argument(
        "--architectures",
        action="store_true",
        help="detail table: architecture name, aliases, description",
    )
    listing.add_argument(
        "--schedulers",
        action="store_true",
        help="detail table: scheduler name, aliases, description",
    )
    listing.add_argument(
        "--workloads",
        action="store_true",
        help="detail table: workload name, aliases, description",
    )
    listing.set_defaults(func=cmd_list)

    profile = commands.add_parser(
        "profile",
        help="run another verb under the obs tracer, print the profile",
    )
    profile.add_argument(
        "cmdline",
        nargs=argparse.REMAINDER,
        help="the repro command line to profile",
    )
    profile.set_defaults(func=cmd_profile)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    traced = False
    trace = getattr(args, "trace", None)
    if trace:
        if obs_spans.enabled():
            # `repro profile <cmd> --trace ...`: one collector at a
            # time; the outer one wins.
            Console.from_args(args).warn(
                "warning: tracing already active; --trace ignored"
            )
        else:
            obs_spans.configure(sinks=[JsonlSink(trace)])
            traced = True
    try:
        return args.func(args)
    except ReproError as error:
        Console.from_args(args).warn(f"error: {error}")
        return 2
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `repro list | head`).
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    finally:
        if traced:
            obs_spans.shutdown()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
