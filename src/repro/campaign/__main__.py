"""``python -m repro.campaign`` -- alias of ``python -m repro``."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
