"""``repro.campaign`` -- persistent, resumable experiment campaigns.

Layered on :mod:`repro.api`, this package gives large design-space
explorations three properties the in-memory runner cannot:

* **durability** -- every completed run appends one self-describing
  JSON record (config hash, schema version, config, result, timing)
  to a :class:`CampaignStore` the moment it finishes;
* **resumability** -- re-running a campaign skips every config hash
  already stored, so an interrupted 10k-run sweep continues where it
  died and unchanged configs are free;
* **shardability** -- :func:`~repro.campaign.hashing.in_shard`
  deterministically partitions configs by hash, letting ``n``
  coordination-free workers each take ``shard=(k, n)`` and
  :func:`merge_stores` fold their stores into exactly the unsharded
  result set.

The ``python -m repro`` command line (:mod:`repro.campaign.cli`)
drives all of it headless: ``repro run``, ``repro sweep``,
``repro report``, ``repro merge``.
"""

from repro.campaign.campaign import Campaign, CampaignReport
from repro.campaign.hashing import (
    canonical_json,
    config_hash,
    experiment_identity,
    in_shard,
    parse_shard,
    shard_index,
)
from repro.campaign.store import (
    DEFAULT_STORE_DIR,
    CampaignStore,
    make_record,
    merge_stores,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "CampaignStore",
    "DEFAULT_STORE_DIR",
    "canonical_json",
    "config_hash",
    "experiment_identity",
    "in_shard",
    "make_record",
    "merge_stores",
    "parse_shard",
    "shard_index",
]
