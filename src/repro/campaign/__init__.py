"""``repro.campaign`` -- persistent, resumable experiment campaigns.

Layered on :mod:`repro.api`, this package gives large design-space
explorations three properties the in-memory runner cannot:

* **durability** -- every completed run appends one self-describing
  JSON record (config hash, schema version, config, result, timing)
  to a store the moment it finishes; the default
  :class:`CampaignStore` keeps records in a flat JSONL file, the
  indexed :class:`SqliteStore` keeps the same contract
  (:class:`StoreBackend`) behind secondary indexes and incrementally
  maintained aggregates, and :func:`migrate_store` moves records
  losslessly between them;
* **resumability** -- re-running a campaign skips every config hash
  already stored, so an interrupted 10k-run sweep continues where it
  died and unchanged configs are free;
* **shardability** -- :func:`~repro.campaign.hashing.in_shard`
  deterministically partitions configs by hash, letting ``n``
  coordination-free workers each take ``shard=(k, n)`` and
  :func:`merge_stores` fold their stores into exactly the unsharded
  result set.

The ``python -m repro`` command line (:mod:`repro.campaign.cli`)
drives all of it headless: ``repro run``, ``repro sweep``,
``repro report``, ``repro merge``, ``repro migrate``.
"""

from repro.campaign.backend import StoreBackend, index_columns
from repro.campaign.campaign import Campaign, CampaignReport
from repro.campaign.hashing import (
    canonical_json,
    config_hash,
    experiment_identity,
    in_shard,
    is_config_hash,
    parse_shard,
    shard_index,
)
from repro.campaign.sqlite import SqliteStore
from repro.campaign.store import (
    DEFAULT_STORE_DIR,
    CampaignStore,
    as_store,
    make_record,
    merge_stores,
    migrate_store,
    open_store,
    store_for_campaign,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "CampaignStore",
    "DEFAULT_STORE_DIR",
    "SqliteStore",
    "StoreBackend",
    "as_store",
    "canonical_json",
    "config_hash",
    "experiment_identity",
    "in_shard",
    "index_columns",
    "is_config_hash",
    "make_record",
    "merge_stores",
    "migrate_store",
    "open_store",
    "parse_shard",
    "shard_index",
    "store_for_campaign",
]
