"""Durable stores of completed campaign runs, JSONL by default.

The historical (and default) backend is one flat append-only JSONL
file -- ``artifacts/campaigns/<name>.jsonl`` -- holding one
self-describing JSON record per completed run:

.. code-block:: json

    {"schema": 1, "hash": "3f9a...", "workload": {...},
     "config": {...}, "result": {...}, "elapsed_s": 0.042}

Records are appended (and fsynced) the moment each run completes, so a
campaign killed mid-flight loses at most the runs still in progress; a
half-written trailing line from the kill is detected and ignored on
the next read.  Reads deduplicate by config hash with *last record
wins*, which makes deliberate re-runs supersede older results without
any in-place rewriting.

Large campaigns outgrow the full-file scan; the indexed SQLite backend
(:class:`repro.campaign.sqlite.SqliteStore`) implements the same
:class:`~repro.campaign.backend.StoreBackend` contract behind indexed
lookups.  :func:`open_store` picks the backend from a path (suffix
first, content sniff for unrecognized suffixes) and
:func:`migrate_store` converts losslessly between them.

Shard stores produced by independent workers merge with
:func:`merge_stores`: records are combined, deduplicated by hash and
written sorted by hash, so the merged file is byte-identical whatever
order the shards arrive in.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError, StoreError
from repro.api.results import SCHEMA_VERSION, RunResult
from repro.campaign.backend import StoreBackend

#: Where named campaign stores live unless told otherwise.
DEFAULT_STORE_DIR = Path("artifacts") / "campaigns"

#: Anything accepted where a store is expected.
StoreLike = Union[StoreBackend, str, Path]

#: Path suffixes that select the SQLite backend.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Path suffix of the JSONL backend.
JSONL_SUFFIX = ".jsonl"


def make_record(
    experiment,
    result: RunResult,
    *,
    config_hash: str,
    elapsed_s: "float | None" = None,
) -> dict:
    """The self-describing store record for one completed run."""
    return {
        "schema": SCHEMA_VERSION,
        "hash": config_hash,
        "workload": experiment.workload.identity(),
        "config": experiment.config.to_dict(),
        "result": result.to_dict(),
        "elapsed_s": elapsed_s,
    }


def _canonical_line(record: Mapping) -> str:
    """One store line: deterministic compact JSON."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _validate_campaign_name(name: str) -> None:
    if not name or name != Path(name).name or name.startswith("."):
        message = f"campaign name must be a bare file stem, got {name!r}"
        raise ConfigurationError(message)


class CampaignStore(StoreBackend):
    """The JSONL result store, keyed by config hash.

    The format is intentionally primitive: no index files, no locks,
    no binary layout.  A store is greppable, diffable, mergeable with
    ``cat`` in a pinch, and safe to append from exactly one writer at
    a time (shards each own a separate file).  Parsed records are
    cached per instance and invalidated by file stat, so rendering
    several tables from one store costs one read, not one per table.
    """

    format = "jsonl"

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._known: "set[str] | None" = None
        #: Malformed lines skipped by the most recent scan (a non-zero
        #: value almost always means a writer was killed mid-append).
        self.skipped_lines = 0
        # Parsed-record cache: (stat key, records, skipped count).
        self._cache: "Optional[Tuple[Tuple[int, int], List[dict], int]]" = None

    @classmethod
    def for_campaign(
        cls,
        name: str,
        store_dir: "str | Path | None" = None,
    ) -> "CampaignStore":
        """The store for a named campaign (``<store_dir>/<name>.jsonl``)."""
        _validate_campaign_name(name)
        root = Path(store_dir) if store_dir is not None else DEFAULT_STORE_DIR
        return cls(root / f"{name}{JSONL_SUFFIX}")

    # -- reading -----------------------------------------------------------

    def _stat_key(self) -> "Optional[Tuple[int, int]]":
        try:
            stat = self.path.stat()
        except OSError:
            return None
        return stat.st_mtime_ns, stat.st_size

    def records(self) -> "list[dict]":
        """Well-formed records in file order (duplicates included).

        Unparseable or shapeless lines are skipped and counted in
        :attr:`skipped_lines`; a record stamped with a *newer* schema
        than this library understands raises :class:`StoreError`
        instead of being misread.
        """
        key = self._stat_key()
        if key is None:
            self.skipped_lines = 0
            self._cache = None
            return []
        if self._cache is not None and self._cache[0] == key:
            _, cached, skipped = self._cache
            self.skipped_lines = skipped
            return list(cached)
        self.skipped_lines = 0
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if not self._well_formed(record):
                self.skipped_lines += 1
                continue
            if record["schema"] > SCHEMA_VERSION:
                message = (
                    f"{self.path}: record schema {record['schema']} is "
                    f"newer than supported schema {SCHEMA_VERSION}"
                )
                raise StoreError(message)
            out.append(record)
        self._cache = (key, out, self.skipped_lines)
        return list(out)

    @staticmethod
    def _well_formed(record) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("schema"), int)
            and isinstance(record.get("hash"), str)
            and isinstance(record.get("result"), dict)
        )

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self._seen()

    # -- writing -----------------------------------------------------------

    def append(self, record: Mapping, *, replace: bool = False) -> bool:
        """Durably append one record; ``False`` if its hash is present.

        The line is flushed and fsynced before returning, so a record
        reported as stored survives the process dying on the next run.
        ``replace=True`` appends even when the hash already exists
        (last record wins on read) -- deliberate re-runs use this.
        """
        config_hash = record["hash"]
        if not replace and config_hash in self._seen():
            return False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = _canonical_line(record)
        cache_was_current = (
            self._cache is not None and self._cache[0] == self._stat_key()
        )
        with open(self.path, "ab+") as handle:
            # A writer killed mid-append leaves a partial line with no
            # newline; start this record on a fresh line so it is not
            # swallowed by the garbage.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write((line + "\n").encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self._seen().add(config_hash)
        if cache_was_current and self._cache is not None:
            key = self._stat_key()
            _, cached, skipped = self._cache
            # Cache what a re-read would parse (JSON round-trip), not
            # the caller's object, so cached and cold reads agree.
            cached.append(json.loads(line))
            self._cache = (key, cached, skipped) if key else None
        else:
            self._cache = None
        return True

    def write_all(self, records: Iterable[Mapping]) -> None:
        """Atomically replace the store's contents with ``records``."""
        records = list(records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [_canonical_line(record) for record in records]
        text = "".join(line + "\n" for line in lines)
        scratch = self.path.with_suffix(".jsonl.tmp")
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self.path)
        try:
            # Persist the rename itself; best-effort (not all
            # platforms allow opening a directory).
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            pass
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self._known = {record["hash"] for record in records}
        self._cache = None

    def append_many(
        self,
        records: Iterable[Mapping],
        *,
        replace: bool = False,
    ) -> int:
        """Batch append with one open/fsync instead of one per record."""
        fresh: "list[Mapping]" = []
        seen = self._seen()
        for record in records:
            config_hash = record["hash"]
            if not replace and (
                config_hash in seen
                or any(item["hash"] == config_hash for item in fresh)
            ):
                continue
            fresh.append(record)
        if not fresh:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(
            _canonical_line(record) + "\n" for record in fresh
        )
        with open(self.path, "ab+") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(payload.encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        seen.update(record["hash"] for record in fresh)
        self._cache = None
        return len(fresh)

    def _seen(self) -> "set[str]":
        if self._known is None:
            self._known = self.hashes()
        return self._known

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self.path)!r})"


def open_store(path: "str | Path") -> StoreBackend:
    """The right backend for ``path``, chosen without opening a run.

    Recognized suffixes decide outright (``.jsonl`` -> JSONL;
    ``.sqlite`` / ``.sqlite3`` / ``.db`` -> SQLite) so a damaged file
    still routes to the backend that knows how to salvage it.  For any
    other suffix an existing file is sniffed by content (SQLite files
    open with a fixed 16-byte magic); new paths default to JSONL.
    """
    from repro.campaign.sqlite import SQLITE_MAGIC, SqliteStore

    resolved = Path(path)
    suffix = resolved.suffix.lower()
    if suffix in SQLITE_SUFFIXES:
        return SqliteStore(resolved)
    if suffix == JSONL_SUFFIX:
        return CampaignStore(resolved)
    try:
        with open(resolved, "rb") as handle:
            header = handle.read(len(SQLITE_MAGIC))
    except OSError:
        header = b""
    if header == SQLITE_MAGIC:
        return SqliteStore(resolved)
    return CampaignStore(resolved)


def store_for_campaign(
    name: str,
    store_dir: "str | Path | None" = None,
    *,
    backend: str = "jsonl",
) -> StoreBackend:
    """The store for a named campaign, in the requested backend."""
    from repro.campaign.sqlite import SqliteStore

    _validate_campaign_name(name)
    root = Path(store_dir) if store_dir is not None else DEFAULT_STORE_DIR
    if backend == "jsonl":
        return CampaignStore(root / f"{name}{JSONL_SUFFIX}")
    if backend == "sqlite":
        return SqliteStore(root / f"{name}{SQLITE_SUFFIXES[0]}")
    message = f"unknown store backend {backend!r} (jsonl, sqlite)"
    raise ConfigurationError(message)


def as_store(source: StoreLike) -> StoreBackend:
    """Coerce a path-or-store into a :class:`StoreBackend`."""
    if isinstance(source, StoreBackend):
        return source
    return open_store(source)


def merge_stores(
    sources: Iterable[StoreLike],
    out: StoreLike,
) -> StoreBackend:
    """Merge shard stores into ``out``, deduplicated by config hash.

    Later sources win on hash collisions (matching the in-file
    last-record-wins rule); the merged store is written sorted by hash,
    so merging the same shards in any order yields identical bytes.
    Sources and target may use different backends -- the target's path
    picks its format.  Merging *onto* one of the sources is refused --
    the atomic rewrite would otherwise destroy an input mid-merge.
    """
    target = as_store(out)
    merged: "dict[str, dict]" = {}
    resolved_target = target.path.resolve()
    for source in sources:
        store = as_store(source)
        if store.path.resolve() == resolved_target:
            message = f"merge target {target.path} is also a merge source"
            raise StoreError(message)
        for record in store.records():
            merged[record["hash"]] = record
    target.write_all(merged[h] for h in sorted(merged))
    return target


def migrate_store(source: StoreLike, out: StoreLike) -> StoreBackend:
    """Copy ``source`` into ``out``, converting between backends.

    The *full* record history migrates -- every append, superseded
    duplicates included, in order -- so last-wins semantics, reports
    and ``repro verify`` verdicts are identical before and after, and
    a JSONL -> SQLite -> JSONL round trip reproduces the original file
    byte-for-byte (for store-written files).  The target is rewritten
    atomically; migrating a store onto itself is refused.
    """
    src = as_store(source)
    target = as_store(out)
    if src.path.resolve() == target.path.resolve():
        message = f"migration target {target.path} is also the source"
        raise StoreError(message)
    target.write_all(src.records())
    return target
