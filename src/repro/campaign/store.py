"""Durable, append-only JSONL stores of completed campaign runs.

A store is one flat file -- ``artifacts/campaigns/<name>.jsonl`` by
default -- holding one self-describing JSON record per completed run:

.. code-block:: json

    {"schema": 1, "hash": "3f9a...", "workload": {...},
     "config": {...}, "result": {...}, "elapsed_s": 0.042}

Records are appended (and fsynced) the moment each run completes, so a
campaign killed mid-flight loses at most the runs still in progress; a
half-written trailing line from the kill is detected and ignored on
the next read.  Reads deduplicate by config hash with *last record
wins*, which makes deliberate re-runs supersede older results without
any in-place rewriting.

Shard stores produced by independent workers merge with
:func:`merge_stores`: records are combined, deduplicated by hash and
written sorted by hash, so the merged file is byte-identical whatever
order the shards arrive in.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Union

from repro.errors import ConfigurationError, StoreError
from repro.api.results import SCHEMA_VERSION, RunResult

#: Where named campaign stores live unless told otherwise.
DEFAULT_STORE_DIR = Path("artifacts") / "campaigns"

#: Anything accepted where a store is expected.
StoreLike = Union["CampaignStore", str, Path]


def make_record(
    experiment,
    result: RunResult,
    *,
    config_hash: str,
    elapsed_s: "float | None" = None,
) -> dict:
    """The self-describing store record for one completed run."""
    return {
        "schema": SCHEMA_VERSION,
        "hash": config_hash,
        "workload": experiment.workload.identity(),
        "config": experiment.config.to_dict(),
        "result": result.to_dict(),
        "elapsed_s": elapsed_s,
    }


class CampaignStore:
    """One JSONL result store, keyed by config hash.

    The store is intentionally primitive: no index files, no locks, no
    binary format.  A store is greppable, diffable, mergeable with
    ``cat`` in a pinch, and safe to append from exactly one writer at
    a time (shards each own a separate file).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._known: "set[str] | None" = None
        #: Malformed lines skipped by the most recent scan (a non-zero
        #: value almost always means a writer was killed mid-append).
        self.skipped_lines = 0

    @classmethod
    def for_campaign(
        cls,
        name: str,
        store_dir: "str | Path | None" = None,
    ) -> "CampaignStore":
        """The store for a named campaign (``<store_dir>/<name>.jsonl``)."""
        if not name or name != Path(name).name or name.startswith("."):
            message = f"campaign name must be a bare file stem, got {name!r}"
            raise ConfigurationError(message)
        root = Path(store_dir) if store_dir is not None else DEFAULT_STORE_DIR
        return cls(root / f"{name}.jsonl")

    @property
    def name(self) -> str:
        """The campaign name (file stem)."""
        return self.path.stem

    # -- reading -----------------------------------------------------------

    def records(self) -> "list[dict]":
        """Well-formed records in file order (duplicates included).

        Unparseable or shapeless lines are skipped and counted in
        :attr:`skipped_lines`; a record stamped with a *newer* schema
        than this library understands raises :class:`StoreError`
        instead of being misread.
        """
        self.skipped_lines = 0
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                self.skipped_lines += 1
                continue
            if not self._well_formed(record):
                self.skipped_lines += 1
                continue
            if record["schema"] > SCHEMA_VERSION:
                message = (
                    f"{self.path}: record schema {record['schema']} is "
                    f"newer than supported schema {SCHEMA_VERSION}"
                )
                raise StoreError(message)
            out.append(record)
        return out

    @staticmethod
    def _well_formed(record) -> bool:
        return (
            isinstance(record, dict)
            and isinstance(record.get("schema"), int)
            and isinstance(record.get("hash"), str)
            and isinstance(record.get("result"), dict)
        )

    def latest(self) -> "dict[str, dict]":
        """Config hash -> record, last record winning."""
        return {record["hash"]: record for record in self.records()}

    def hashes(self) -> "set[str]":
        """Config hashes with a completed run on disk."""
        return set(self.latest())

    def results(self) -> "dict[str, RunResult]":
        """Config hash -> reconstructed :class:`RunResult`."""
        return {
            config_hash: RunResult.from_dict(record["result"])
            for config_hash, record in self.latest().items()
        }

    def __len__(self) -> int:
        return len(self.latest())

    def __contains__(self, config_hash: str) -> bool:
        return config_hash in self._seen()

    # -- writing -----------------------------------------------------------

    def append(self, record: Mapping, *, replace: bool = False) -> bool:
        """Durably append one record; ``False`` if its hash is present.

        The line is flushed and fsynced before returning, so a record
        reported as stored survives the process dying on the next run.
        ``replace=True`` appends even when the hash already exists
        (last record wins on read) -- deliberate re-runs use this.
        """
        config_hash = record["hash"]
        if not replace and config_hash in self._seen():
            return False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "ab+") as handle:
            # A writer killed mid-append leaves a partial line with no
            # newline; start this record on a fresh line so it is not
            # swallowed by the garbage.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write((line + "\n").encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self._seen().add(config_hash)
        return True

    def write_all(self, records: Iterable[Mapping]) -> None:
        """Atomically replace the store's contents with ``records``."""
        records = list(records)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records
        ]
        text = "".join(line + "\n" for line in lines)
        scratch = self.path.with_suffix(".jsonl.tmp")
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, self.path)
        try:
            # Persist the rename itself; best-effort (not all
            # platforms allow opening a directory).
            dir_fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            pass
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        self._known = {record["hash"] for record in records}

    def _seen(self) -> "set[str]":
        if self._known is None:
            self._known = self.hashes()
        return self._known

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({str(self.path)!r})"


def as_store(source: StoreLike) -> CampaignStore:
    """Coerce a path-or-store into a :class:`CampaignStore`."""
    if isinstance(source, CampaignStore):
        return source
    return CampaignStore(source)


def merge_stores(
    sources: Iterable[StoreLike],
    out: StoreLike,
) -> CampaignStore:
    """Merge shard stores into ``out``, deduplicated by config hash.

    Later sources win on hash collisions (matching the in-file
    last-record-wins rule); the merged store is written sorted by hash,
    so merging the same shards in any order yields identical bytes.
    Merging *onto* one of the sources is refused -- the atomic rewrite
    would otherwise destroy an input mid-merge.
    """
    target = as_store(out)
    merged: "dict[str, dict]" = {}
    resolved_target = target.path.resolve()
    for source in sources:
        store = as_store(source)
        if store.path.resolve() == resolved_target:
            message = f"merge target {target.path} is also a merge source"
            raise StoreError(message)
        for record in store.records():
            merged[record["hash"]] = record
    target.write_all(merged[h] for h in sorted(merged))
    return target
