"""The storage contract every campaign store backend satisfies.

:class:`StoreBackend` is the abstract interface the campaign layer is
written against: the runner resumes through :meth:`StoreBackend.lookup`,
``repro report`` tabulates through :meth:`StoreBackend.latest` /
:meth:`StoreBackend.iter_latest`, ``repro merge`` rewrites through
:meth:`StoreBackend.write_all`.  Two implementations exist:

* :class:`repro.campaign.store.CampaignStore` -- the historical
  append-only JSONL file (greppable, diffable, ``cat``-mergeable);
* :class:`repro.campaign.sqlite.SqliteStore` -- an indexed SQLite
  database for million-run campaigns, where resume-skip checks and
  filtered reports are index lookups instead of full scans.

Every backend must preserve the invariants the campaign layer is built
on, whatever its on-disk shape:

* **append-only, last record wins** -- :meth:`append` never rewrites
  history; duplicate hashes are resolved at read time in favour of the
  most recently appended record, so deliberate re-runs supersede old
  results without destroying the audit trail;
* **deterministic merge** -- :func:`repro.campaign.store.merge_stores`
  writes the deduplicated union sorted by hash through
  :meth:`write_all`, so merging the same shards in any order yields
  an identical store (bit-for-bit on JSONL);
* **tolerant reads, healing appends** -- a store damaged by a killed
  writer must still read (salvaging every intact record, counting the
  damage in :attr:`skipped_lines`) and must accept appends afterwards.

Records are classified for indexing and filtering through one shared
helper, :func:`index_columns`, so a filtered report is the same result
set whether it came from a SQLite index scan or a JSONL full scan.
"""

from __future__ import annotations

import abc
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from repro.api.results import RunResult

#: ``record["kind"]`` of a plain experiment-run record.  Historical
#: records carry no ``kind`` key at all; readers treat absence as this.
RUN_KIND = "run"

#: The indexed identity axes, in column order.
INDEX_FIELDS: "Tuple[str, ...]" = (
    "kind",
    "workload",
    "architecture",
    "scheduler",
)

#: One aggregate bucket: the values of :data:`INDEX_FIELDS`, in order.
AggregateKey = Tuple[str, Optional[str], Optional[str], Optional[str]]


def record_kind(record: Mapping) -> str:
    """The record's kind tag (``"run"`` when untagged)."""
    kind = record.get("kind")
    return kind if isinstance(kind, str) and kind else RUN_KIND


def index_columns(record: Mapping) -> "Dict[str, Optional[str]]":
    """The indexed identity columns of one store record.

    Both backends classify records through this helper -- SQLite at
    append time (into real indexed columns), JSONL at scan time -- so
    filtered reads agree across backends by construction.  Missing or
    malformed fields index as ``None`` rather than raising: a store
    must stay readable even when it holds records this library version
    does not fully understand.
    """
    result = record.get("result")
    result = result if isinstance(result, Mapping) else {}
    config = record.get("config")
    config = config if isinstance(config, Mapping) else {}

    def field(key: str) -> "Optional[str]":
        for source in (result, config):
            value = source.get(key)
            if isinstance(value, str) and value:
                return value
        return None

    workload = field("workload")
    if workload is None:
        identity = record.get("workload")
        name = identity.get("name") if isinstance(identity, Mapping) else None
        workload = name if isinstance(name, str) and name else None
    return {
        "kind": record_kind(record),
        "workload": workload,
        "architecture": field("architecture"),
        "scheduler": field("scheduler"),
    }


def aggregate_key(record: Mapping) -> AggregateKey:
    """The aggregate bucket a record counts into."""
    columns = index_columns(record)
    return (
        columns["kind"] or RUN_KIND,
        columns["workload"],
        columns["architecture"],
        columns["scheduler"],
    )


def _matches(
    record: Mapping,
    filters: "Mapping[str, Optional[str]]",
) -> bool:
    """Whether a record satisfies every non-``None`` filter."""
    columns = index_columns(record)
    return all(
        value is None or columns.get(key) == value
        for key, value in filters.items()
    )


class StoreBackend(abc.ABC):
    """One durable campaign result store, keyed by config hash.

    Subclasses implement the physical layer -- :meth:`records`,
    :meth:`append`, :meth:`write_all` -- and may override the derived
    queries (:meth:`lookup`, :meth:`iter_latest`,
    :meth:`aggregate_counts`, ...) with indexed implementations.  The
    scan-based defaults here define the semantics every override must
    reproduce exactly.
    """

    #: Canonical backend name (``"jsonl"``, ``"sqlite"``).
    format: str = ""

    path: Path

    #: Damage skipped by the most recent scan: malformed JSONL lines,
    #: unreadable SQLite rows, or 1 per unreadable database when the
    #: row count is unknowable.  Non-zero almost always means a writer
    #: was killed mid-append.
    skipped_lines: int = 0

    # -- physical layer ----------------------------------------------------

    @abc.abstractmethod
    def records(self) -> "List[dict]":
        """Every well-formed record in append order, duplicates included.

        Unreadable content is skipped and counted in
        :attr:`skipped_lines`; a record stamped with a *newer* schema
        than this library understands raises
        :class:`~repro.errors.StoreError` instead of being misread.
        """

    @abc.abstractmethod
    def append(self, record: Mapping, *, replace: bool = False) -> bool:
        """Durably append one record; ``False`` if its hash is present.

        The record must be on disk when this returns (fsync or
        equivalent).  ``replace=True`` appends even when the hash
        already exists (last record wins on read) -- deliberate
        re-runs use this.
        """

    @abc.abstractmethod
    def write_all(self, records: "Iterable[Mapping]") -> None:
        """Atomically replace the store's contents with ``records``.

        Order is preserved (it carries the last-wins semantics), and
        the replacement must be all-or-nothing: a crash mid-write
        leaves the old contents intact.
        """

    def append_many(
        self,
        records: "Iterable[Mapping]",
        *,
        replace: bool = False,
    ) -> int:
        """Append a batch; returns how many records were stored.

        Semantically ``sum(append(r, replace=...) for r in records)``;
        backends override this with one-transaction implementations.
        """
        count = 0
        for record in records:
            count += bool(self.append(record, replace=replace))
        return count

    # -- derived queries (override with indexed versions) ------------------

    def latest(self) -> "Dict[str, dict]":
        """Config hash -> record, last record winning."""
        return {record["hash"]: record for record in self.records()}

    def hashes(self) -> "Set[str]":
        """Config hashes with a completed run on disk."""
        return set(self.latest())

    def lookup(self, hashes: "Iterable[str]") -> "Dict[str, dict]":
        """The latest record of every listed hash present in the store.

        This is the resume-skip primitive: the runner asks about the
        batch it is about to execute, nothing more, so an indexed
        backend answers in O(batch) however large the store is.
        """
        wanted = set(hashes)
        return {
            config_hash: record
            for config_hash, record in self.latest().items()
            if config_hash in wanted
        }

    def iter_latest(
        self,
        *,
        kind: "Optional[str]" = None,
        workload: "Optional[str]" = None,
        architecture: "Optional[str]" = None,
        scheduler: "Optional[str]" = None,
    ) -> "Iterator[dict]":
        """Latest-wins records matching every given filter.

        Filters compare against :func:`index_columns`; ``None`` means
        "any".  Yield order is unspecified (reports sort by hash).
        """
        filters = {
            "kind": kind,
            "workload": workload,
            "architecture": architecture,
            "scheduler": scheduler,
        }
        for record in self.latest().values():
            if _matches(record, filters):
                yield record

    def aggregate_counts(self) -> "Dict[AggregateKey, int]":
        """Latest-wins record counts per aggregate bucket.

        Scan-based here; the SQLite backend answers from aggregates
        maintained transactionally on append, making campaign-level
        summaries O(buckets) instead of O(store).
        """
        return self.scan_aggregate_counts()

    def scan_aggregate_counts(self) -> "Dict[AggregateKey, int]":
        """Aggregate counts recomputed from the records themselves.

        The reference implementation :meth:`aggregate_counts` must
        agree with -- ``repro verify`` checks exactly that (REC009) on
        backends that maintain materialized aggregates.
        """
        counts: "Counter[AggregateKey]" = Counter(
            aggregate_key(record) for record in self.latest().values()
        )
        return dict(counts)

    def results(self) -> "Dict[str, RunResult]":
        """Config hash -> reconstructed :class:`RunResult`."""
        return {
            config_hash: RunResult.from_dict(record["result"])
            for config_hash, record in self.latest().items()
        }

    def compact(self) -> None:
        """Drop superseded duplicates, rewriting sorted by hash.

        After compaction the store holds exactly its :meth:`latest`
        set in hash order -- the same canonical layout
        :func:`~repro.campaign.store.merge_stores` produces, so
        compacting equal stores yields equal stores.
        """
        latest = self.latest()
        self.write_all(latest[config_hash] for config_hash in sorted(latest))

    # -- conveniences ------------------------------------------------------

    @property
    def name(self) -> str:
        """The campaign name (file stem)."""
        return self.path.stem

    def __len__(self) -> int:
        return len(self.latest())

    def __contains__(self, config_hash: str) -> bool:
        return bool(self.lookup([config_hash]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.path)!r})"
