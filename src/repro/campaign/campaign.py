"""Resumable, shardable experiment campaigns.

A :class:`Campaign` is a named batch of experiments bound to a durable
:class:`~repro.campaign.store.CampaignStore`.  Running it executes
only the experiments without a stored result -- interrupted campaigns
resume where they died, and re-running a finished campaign is free.
Deterministic sharding (``shard=(k, n)``) partitions the batch by
config hash, so ``n`` independent workers (CI jobs, machines) each run
``shard=(1, n) .. (n, n)`` against private stores and
:func:`~repro.campaign.store.merge_stores` combines them into exactly
the unsharded result set.

.. code-block:: python

    from repro.campaign import Campaign

    campaign = Campaign.sweep(
        "widths",
        ["itc02-d695"],
        architectures=["casbus", "mux-bus"],
        bus_widths=[8, 16, 32],
    )
    report = campaign.run()          # executes everything
    report = campaign.run()          # instant: all cached
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import counter as obs_counter
from repro.obs.metrics import histogram as obs_histogram
from repro.obs.spans import span as obs_span
from repro.api.experiment import Experiment
from repro.api.results import RunConfig, RunResult
from repro.api.runner import run_many, sweep_experiments
from repro.campaign.backend import StoreBackend
from repro.campaign.hashing import config_hash, in_shard, validate_shard
from repro.campaign.store import store_for_campaign


@dataclass
class CampaignReport:
    """What one :meth:`Campaign.run` call did.

    ``results`` holds the runs this call *selected* (the whole batch,
    or just this shard's slice), in grid order, mixing cached and
    freshly executed results -- the two are indistinguishable by
    construction.
    """

    name: str
    store_path: str
    total: int
    selected: int
    executed: int
    cached: int
    shard: "tuple[int, int] | None" = None
    results: "list[RunResult]" = field(default_factory=list)

    def summary(self) -> str:
        """One-line human summary."""
        part = ""
        if self.shard is not None:
            index, count = self.shard
            part = f" (shard {index}/{count}: {self.selected} selected)"
        return (
            f"campaign {self.name!r}: {self.total} runs{part}, "
            f"{self.executed} executed, {self.cached} cached "
            f"-> {self.store_path}"
        )


class Campaign:
    """A named experiment batch with a persistent result store."""

    def __init__(
        self,
        name: str,
        experiments: Iterable[Experiment],
        *,
        store: "StoreBackend | None" = None,
        store_dir=None,
        backend: str = "jsonl",
    ) -> None:
        self.name = name
        self.experiments = list(experiments)
        for item in self.experiments:
            if not isinstance(item, Experiment):
                message = (
                    f"Campaign expects Experiment instances, "
                    f"got {type(item).__name__}"
                )
                raise ConfigurationError(message)
        if store is None:
            store = store_for_campaign(name, store_dir, backend=backend)
        self.store = store

    @classmethod
    def sweep(
        cls,
        name: str,
        workloads: Sequence,
        *,
        architectures: Sequence[str] = ("casbus",),
        bus_widths: "Sequence[int | None]" = (None,),
        schedulers: Sequence[str] = ("greedy",),
        base_config: "RunConfig | None" = None,
        store: "StoreBackend | None" = None,
        store_dir=None,
        backend: str = "jsonl",
    ) -> "Campaign":
        """A campaign over the standard design-space grid.

        The grid is workloads (outer) x architectures x bus widths x
        schedulers (inner), exactly as
        :func:`repro.api.runner.run_matrix` builds it.  ``backend``
        picks the store format for the default named store
        (``"jsonl"`` or ``"sqlite"``); an explicit ``store`` wins.
        """
        if isinstance(workloads, str):
            workloads = [workloads]
        experiments: "list[Experiment]" = []
        for workload in workloads:
            experiments.extend(
                sweep_experiments(
                    workload,
                    architectures=architectures,
                    bus_widths=bus_widths,
                    schedulers=schedulers,
                    base_config=base_config,
                )
            )
        return cls(
            name,
            experiments,
            store=store,
            store_dir=store_dir,
            backend=backend,
        )

    def hashes(self) -> "list[str]":
        """Config hash per experiment, in grid order."""
        return [config_hash(item) for item in self.experiments]

    def pending(self, shard: "tuple[int, int] | None" = None) -> int:
        """How many selected runs have no stored result yet.

        Asks the store only about this campaign's own hashes
        (:meth:`~repro.campaign.backend.StoreBackend.lookup`), so the
        answer is O(campaign) even against a million-run shared store.
        """
        selected = self.selected_hashes(shard)
        stored = self.store.lookup(selected)
        return sum(1 for item_hash in selected if item_hash not in stored)

    def selected_hashes(
        self,
        shard: "tuple[int, int] | None" = None,
    ) -> "list[str]":
        """Config hashes of the runs a ``shard`` selects (grid order)."""
        hashes = self.hashes()
        if shard is None:
            return hashes
        index, count = shard
        validate_shard(index, count)
        return [h for h in hashes if in_shard(h, index, count)]

    def run(
        self,
        *,
        shard: "tuple[int, int] | None" = None,
        parallel: bool = True,
        max_workers: "int | None" = None,
        rerun: bool = False,
        on_result: Optional[Callable] = None,
    ) -> CampaignReport:
        """Execute the campaign's missing runs; everything else is free.

        Args:
            shard: ``(k, n)`` with ``1 <= k <= n`` selects the batch
                slice this worker owns (partitioned by config hash);
                ``None`` runs everything.
            parallel / max_workers: as in
                :func:`repro.api.runner.run_many`.
            rerun: execute even already-stored configs; their new
                records supersede the old ones.
            on_result: progress callback, called as
                ``on_result(experiment, result, cached=..., elapsed=...)``
                the moment each (cached or executed) result is known.
        """
        hashes = self.hashes()
        if shard is None:
            selected = list(range(len(self.experiments)))
        else:
            index, count = shard
            validate_shard(index, count)
            selected = [
                position
                for position, item_hash in enumerate(hashes)
                if in_shard(item_hash, index, count)
            ]
        executed_count = 0
        cached_count = 0

        def tally(experiment, result, *, cached, elapsed):
            nonlocal executed_count, cached_count
            if cached:
                cached_count += 1
                obs_counter("campaign.resume_skips").inc()
            else:
                executed_count += 1
                obs_histogram("campaign.record_s").observe(elapsed)
            if on_result is not None:
                on_result(experiment, result, cached=cached, elapsed=elapsed)

        with obs_span(
            "campaign.run",
            campaign=self.name,
            selected=len(selected),
            shard=f"{shard[0]}/{shard[1]}" if shard else None,
        ) as run_span:
            results = run_many(
                [self.experiments[position] for position in selected],
                parallel=parallel,
                max_workers=max_workers,
                store=self.store,
                rerun=rerun,
                on_result=tally,
            )
            run_span.set(executed=executed_count, cached=cached_count)
        return CampaignReport(
            name=self.name,
            store_path=str(self.store.path),
            total=len(self.experiments),
            selected=len(selected),
            executed=executed_count,
            cached=cached_count,
            shard=shard,
            results=results,
        )
