"""Four-valued logic for test-architecture simulation.

The CAS switches its core-side terminals to high impedance during the
configuration phase (paper, section 3), so every simulation layer in this
library works over the classic four-valued IEEE-1164 subset:

* ``ZERO`` / ``ONE`` -- strong driven values,
* ``X``  -- unknown (conflict, uninitialised, or unknown-select),
* ``Z``  -- high impedance (undriven).

Values are plain ints so they pack into tuples cheaply and compare fast.
All gate evaluation helpers below treat ``Z`` *as an input* like an
unknown: sampling a floating wire yields an unknown logic level.
"""

from __future__ import annotations

from typing import Iterable

ZERO = 0
ONE = 1
X = 2
Z = 3

#: All legal logic values, in canonical order.
VALUES = (ZERO, ONE, X, Z)

#: Values that represent an actively driven, known level.
DRIVEN = (ZERO, ONE)

_CHAR = {ZERO: "0", ONE: "1", X: "X", Z: "Z"}
_FROM_CHAR = {"0": ZERO, "1": ONE, "x": X, "X": X, "z": Z, "Z": Z}


def to_char(value: int) -> str:
    """Render a logic value as one of ``0 1 X Z``."""
    return _CHAR[value]


def from_char(char: str) -> int:
    """Parse a logic value from one of ``0 1 x X z Z``."""
    try:
        return _FROM_CHAR[char]
    except KeyError:
        raise ValueError(f"not a logic value character: {char!r}") from None


def to_string(values: Iterable[int]) -> str:
    """Render a sequence of logic values as a compact string."""
    return "".join(_CHAR[v] for v in values)


def from_string(text: str) -> tuple[int, ...]:
    """Parse a string of ``0 1 X Z`` characters into logic values."""
    return tuple(from_char(c) for c in text)


def is_known(value: int) -> bool:
    """True for strongly driven ``ZERO``/``ONE``; False for ``X``/``Z``."""
    return value == ZERO or value == ONE


def v_not(value: int) -> int:
    """Four-valued inverter."""
    if value == ZERO:
        return ONE
    if value == ONE:
        return ZERO
    return X


def v_buf(value: int) -> int:
    """Four-valued buffer: passes driven values, maps X/Z to X."""
    return value if is_known(value) else X


def v_and(values: Iterable[int]) -> int:
    """Four-valued AND: any 0 dominates, otherwise any unknown yields X."""
    result = ONE
    for value in values:
        if value == ZERO:
            return ZERO
        if value != ONE:
            result = X
    return result


def v_or(values: Iterable[int]) -> int:
    """Four-valued OR: any 1 dominates, otherwise any unknown yields X."""
    result = ZERO
    for value in values:
        if value == ONE:
            return ONE
        if value != ZERO:
            result = X
    return result


def v_xor(values: Iterable[int]) -> int:
    """Four-valued XOR: parity when all inputs known, else X."""
    parity = ZERO
    for value in values:
        if not is_known(value):
            return X
        parity ^= value
    return parity


def v_mux(d0: int, d1: int, sel: int) -> int:
    """Four-valued 2:1 multiplexer.

    An unknown select still yields a known output when both data inputs
    agree on a driven value, mirroring how synthesised muxes behave.
    """
    if sel == ZERO:
        return v_buf(d0)
    if sel == ONE:
        return v_buf(d1)
    if d0 == d1 and is_known(d0):
        return d0
    return X


def v_tristate(data: int, enable: int) -> int:
    """Tri-state buffer: drives ``data`` when enabled, else ``Z``.

    An unknown enable produces X (the buffer may or may not drive).
    """
    if enable == ONE:
        return v_buf(data)
    if enable == ZERO:
        return Z
    return X


def resolve(a: int, b: int) -> int:
    """Wired resolution of two drivers on one net.

    ``Z`` is the identity; two agreeing drivers keep their value;
    disagreeing or unknown drivers produce ``X`` (bus contention).
    """
    if a == Z:
        return b
    if b == Z:
        return a
    if a == b and is_known(a):
        return a
    return X


def resolve_all(drivers: Iterable[int]) -> int:
    """Resolve any number of drivers; an undriven net floats to ``Z``."""
    result = Z
    for value in drivers:
        result = resolve(result, value)
        if result == X:
            return X
    return result
