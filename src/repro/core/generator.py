"""CAS generator: from (N, P) to a gate-level netlist, VHDL and area.

This is the reproduction of the paper's CAS architecture generator
(section 3.2/3.3: a C program emitting VHDL, synthesised with Synopsys).
Here the flow is:

1. build the instruction set (``m`` instructions, ``k``-bit register);
2. derive the switch-control functions over the instruction code space
   (wire-to-port connect signals), with codes ``>= m`` as don't-cares;
3. minimise each function (:mod:`repro.logic`) -- the stand-in for the
   commercial synthesiser's logic optimisation;
4. emit a structural netlist: instruction shift stage, update stage,
   minimised decoder, tri-state N/P switch, configuration muxes;
5. report area (:mod:`repro.netlist.area`) and emit VHDL text
   (:mod:`repro.core.vhdl`).

Netlist port contract (matching figure 3 of the paper):

* inputs: ``e0..e{N-1}``, ``i0..i{P-1}``, ``config``, ``update``;
* outputs: ``s0..s{N-1}``, ``o0..o{P-1}`` (tri-stated);
* sequential cells: ``ir_<b>`` (shift stage), ``upd_<b>`` (update stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro import values as lv
from repro.errors import ConfigurationError
from repro.logic.cover import Cover
from repro.logic.minimize import minimize, minimize_heuristic
from repro.logic.synth import CoverSynthesizer
from repro.netlist.area import AreaReport, area_report
from repro.netlist.netlist import Netlist
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import FIRST_TEST_CODE, InstructionSet

#: Above this instruction count the generator uses the heuristic
#: minimiser; exact QM below.  (Chosen so every Table 1 row, including
#: the (8,4) CAS with m=1682, is minimised exactly.)
EXACT_M_LIMIT = 2048


@dataclass(frozen=True)
class CasDesign:
    """Everything the generator produces for one (N, P) CAS.

    Attributes:
        iset: the instruction set (carries m, k, schemes).
        netlist: structural gate-level netlist.
        connect_covers: minimised covers, keyed ``(wire, port)``.
        area: mapped-cell / GE area report.
    """

    iset: InstructionSet
    netlist: Netlist
    connect_covers: dict[tuple[int, int], Cover]
    area: AreaReport

    @property
    def n(self) -> int:
        return self.iset.n

    @property
    def p(self) -> int:
        return self.iset.p

    @property
    def m(self) -> int:
        return self.iset.m

    @property
    def k(self) -> int:
        return self.iset.k

    @cached_property
    def vhdl(self) -> str:
        """VHDL text for this CAS (generated lazily)."""
        from repro.core.vhdl import emit_vhdl

        return emit_vhdl(self)

    def table1_row(self) -> tuple[int, int, int, int, int]:
        """The quantities of one Table 1 row: (N, P, m, k, gates)."""
        return (self.n, self.p, self.m, self.k, self.area.cell_count)


@dataclass
class CasGenerator:
    """Parameterised CAS generator.

    Attributes:
        n: test bus width (paper's N).
        p: switched wires for this core (paper's P).
        policy: scheme enumeration policy (see
            :mod:`repro.core.switch`); ``"all"`` reproduces Table 1.
        minimizer: ``"auto"`` | ``"exact"`` | ``"heuristic"``.
    """

    n: int
    p: int
    policy: str = "all"
    minimizer: str = "auto"
    _iset: InstructionSet = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._iset = InstructionSet(self.n, self.p, self.policy)
        if self.minimizer not in ("auto", "exact", "heuristic"):
            raise ConfigurationError(
                f"minimizer must be auto/exact/heuristic, got {self.minimizer!r}"
            )

    @property
    def iset(self) -> InstructionSet:
        return self._iset

    # -- decoder specification ----------------------------------------------

    def connect_on_sets(self) -> dict[tuple[int, int], list[int]]:
        """On-set (instruction codes) of each wire-to-port connect signal.

        ``con[(i, j)]`` is active for every TEST instruction whose scheme
        routes bus wire ``i`` to core port ``j``.  Pairs never used by
        the policy are omitted (their signal is constant 0).
        """
        on_sets: dict[tuple[int, int], list[int]] = {}
        for index, scheme in enumerate(self._iset.schemes):
            code = FIRST_TEST_CODE + index
            for port, wire in enumerate(scheme.wire_of_port):
                on_sets.setdefault((wire, port), []).append(code)
        return on_sets

    def dont_care_codes(self) -> list[int]:
        """Bit patterns that fit the register but name no instruction."""
        return list(range(self._iset.m, 1 << self._iset.k))

    def minimize_covers(self) -> dict[tuple[int, int], Cover]:
        """Minimise every connect function over the code space."""
        dc = self.dont_care_codes()
        use_exact = self.minimizer == "exact" or (
            self.minimizer == "auto" and self._iset.m <= EXACT_M_LIMIT
        )
        covers: dict[tuple[int, int], Cover] = {}
        for key, on_set in sorted(self.connect_on_sets().items()):
            if use_exact:
                covers[key] = minimize(on_set, self._iset.k, dc)
            else:
                covers[key] = minimize_heuristic(on_set, self._iset.k, dc)
        return covers

    # -- netlist construction ----------------------------------------------

    def generate(self) -> CasDesign:
        """Produce the full design bundle for this (N, P) CAS."""
        covers = self.minimize_covers()
        netlist = self._build_netlist(covers)
        netlist.validate()
        return CasDesign(
            iset=self._iset,
            netlist=netlist,
            connect_covers=covers,
            area=area_report(netlist),
        )

    def _build_netlist(self, covers: dict[tuple[int, int], Cover]) -> Netlist:
        n, p, k = self.n, self.p, self._iset.k
        nl = Netlist(name=f"cas_{n}_{p}")
        e_nets = [nl.add_input(f"e{w}") for w in range(n)]
        i_nets = [nl.add_input(f"i{j}") for j in range(p)]
        config = nl.add_input("config")
        update = nl.add_input("update")
        s_nets = [nl.add_output(f"s{w}") for w in range(n)]
        o_nets = [nl.add_output(f"o{j}") for j in range(p)]

        # Instruction shift stage: stage 0 is the serial-out end; the
        # serial input (bus wire e0) enters at stage k-1.
        ir_q = [f"ir_q{b}" for b in range(k)]
        for b in range(k):
            shift_source = ir_q[b + 1] if b + 1 < k else e_nets[0]
            d_net = nl.fresh_net(f"ir_d{b}")
            nl.add_gate("MUX2", (ir_q[b], shift_source, config), d_net)
            nl.add_gate("DFF", (d_net,), ir_q[b], name=f"ir_{b}")

        # Update stage: captures the shift stage when `update` pulses.
        upd_q = [f"upd_q{b}" for b in range(k)]
        for b in range(k):
            nl.add_gate("DFFE", (ir_q[b], update), upd_q[b], name=f"upd_{b}")

        # Decoder: minimised connect signals over the update stage.
        synthesizer = CoverSynthesizer(nl, upd_q)
        con_nets: dict[tuple[int, int], str] = {}
        for (wire, port), cover in covers.items():
            net = f"con_{wire}_{port}"
            synthesizer.synthesize(cover, net)
            con_nets[(wire, port)] = net

        config_n = nl.fresh_net("config_n")
        nl.add_gate("INV", (config,), config_n)

        # Core-side outputs: tri-state drivers, one per candidate wire,
        # gated off during configuration.
        for port in range(p):
            drivers = [
                (wire, con_nets[(wire, port)])
                for wire in range(n)
                if (wire, port) in con_nets
            ]
            if not drivers:
                raise ConfigurationError(
                    f"policy {self.policy!r} leaves core port o{port} unreachable"
                )
            for wire, con in drivers:
                enable = nl.fresh_net(f"en_{wire}_{port}")
                nl.add_gate("AND", (con, config_n), enable)
                nl.add_gate("TRIBUF", (e_nets[wire], enable), o_nets[port])

        # Bus outputs: test return when switched, else bypass; wire 0
        # additionally carries the serial chain during configuration.
        for wire in range(n):
            terms = []
            for port in range(p):
                con = con_nets.get((wire, port))
                if con is not None:
                    term = nl.fresh_net(f"ret_{wire}_{port}")
                    nl.add_gate("AND", (con, i_nets[port]), term)
                    terms.append(term)
            if terms:
                ret_net = terms[0]
                if len(terms) > 1:
                    ret_net = nl.fresh_net(f"ret_{wire}")
                    nl.add_gate("OR", tuple(terms), ret_net)
                any_con = nl.fresh_net(f"anycon_{wire}")
                sources = [con_nets[(wire, port)]
                           for port in range(p) if (wire, port) in con_nets]
                if len(sources) == 1:
                    nl.add_gate("BUF", (sources[0],), any_con)
                else:
                    nl.add_gate("OR", tuple(sources), any_con)
                normal = nl.fresh_net(f"snorm_{wire}")
                nl.add_gate("MUX2", (e_nets[wire], ret_net, any_con), normal)
            else:
                normal = e_nets[wire]
            if wire == 0:
                nl.add_gate("MUX2", (normal, ir_q[0], config), s_nets[0])
            elif normal == e_nets[wire]:
                nl.add_gate("BUF", (e_nets[wire],), s_nets[wire])
            else:
                nl.add_gate("MUX2", (normal, e_nets[wire], config), s_nets[wire])
        return nl


def generate_cas(
    n: int,
    p: int,
    policy: str = "all",
    minimizer: str = "auto",
) -> CasDesign:
    """One-call convenience wrapper around :class:`CasGenerator`."""
    return CasGenerator(n=n, p=p, policy=policy, minimizer=minimizer).generate()


def behavioral_reference(
    design: CasDesign,
    active_code: int,
):
    """Build a reference function for netlist equivalence checking.

    Returns ``reference(assignment) -> expected outputs`` evaluating the
    behavioural CAS with ``active_code`` loaded, suitable for
    :func:`repro.netlist.verify.check_combinational_equivalence`.
    """
    cas = CoreAccessSwitch(design.iset, name=design.netlist.name)
    cas.load_code(active_code)
    cas.update()
    # Park the shift stage at zero (matching a netlist whose ir_* cells
    # are cleared) so the config-mode serial output compares equal.
    cas.load_code(0)

    def reference(assignment: dict[str, int]) -> dict[str, int]:
        e = [assignment[f"e{w}"] for w in range(design.n)]
        returns = [assignment[f"i{j}"] for j in range(design.p)]
        config = assignment["config"] == lv.ONE
        routing = cas.route(e, returns, config=config)
        expected: dict[str, int] = {}
        for wire in range(design.n):
            expected[f"s{wire}"] = routing.s[wire]
        for port in range(design.p):
            expected[f"o{port}"] = routing.o[port]
        return expected

    return reference
