"""Area models for the three CAS implementation styles of section 3.3.

The paper synthesises the generated VHDL ("# of gates", Table 1) and
mentions two further implementations under study: "a highly optimized
gate level description" and "a hardware architecture based on the use of
pass transistors", the latter reported to "solve the CAS area problem
for large width test busses, even without restricting heuristics".

This module quantifies all three so the ablation experiment (A1) can
reproduce that qualitative ordering:

* **cell** -- the mapped cell count / GE of the generated netlist
  (directly comparable to Table 1);
* **optimized gate-level** -- a literal-count lower-bound estimate of
  the decoder plus the unavoidable switch/register structure, the floor
  a hand-optimised gate design approaches;
* **pass transistor** -- transmission gates for the switch matrix and a
  product-term line per cube, measured in transistors and converted at
  4 transistors per NAND2-equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import CasDesign

#: Transistors per NAND2-equivalent, the usual conversion.
TRANSISTORS_PER_GE = 4.0

#: Sequential cost (GE) of one shift + one update stage bit.
_SEQ_GE_PER_BIT = 4.25 + 5.0


@dataclass(frozen=True)
class CasAreaComparison:
    """Area of one (N, P) CAS under the three implementation styles.

    All figures in NAND2-equivalents (GE); ``cell_count`` additionally
    reports mapped cells for Table 1 comparison.
    """

    n: int
    p: int
    m: int
    k: int
    cell_count: int
    cell_ge: float
    optimized_ge: float
    pass_transistor_ge: float


def decoder_literals(design: CasDesign) -> int:
    """Total literal count of the minimised decoder covers."""
    return sum(cover.num_literals() for cover in design.connect_covers.values())


def optimized_gate_estimate(design: CasDesign) -> float:
    """GE estimate for a hand-optimised gate-level CAS.

    Registers are kept as-is (2k sequential bits); the decoder is
    costed at its literal count divided by two (each 2-input gate
    absorbs two literals, sharing assumed perfect); the switch keeps
    one tri-state driver per (wire, port) pair and one output mux per
    wire.
    """
    k = design.k
    literals = decoder_literals(design)
    switch_pairs = len(design.connect_covers)
    sequential = k * _SEQ_GE_PER_BIT
    decoder = literals / 2.0
    switch = switch_pairs * 1.25 + design.n * 2.25
    return round(sequential + decoder + switch, 2)


def pass_transistor_estimate(design: CasDesign) -> float:
    """GE-converted transistor estimate for the pass-transistor CAS.

    Switch matrix: one transmission gate (2 transistors) per
    (wire, port) pair in each direction (4 per pair).  Decoder: one
    series pass-transistor chain per cube (literals + 1 transistors).
    Registers stay static CMOS (2k bits at the library cost, in
    transistors).
    """
    pairs = len(design.connect_covers)
    switch_transistors = 4 * pairs
    decoder_transistors = sum(
        cube.num_literals() + 1
        for cover in design.connect_covers.values()
        for cube in cover.cubes
    )
    register_transistors = design.k * _SEQ_GE_PER_BIT * TRANSISTORS_PER_GE
    total = switch_transistors + decoder_transistors + register_transistors
    return round(total / TRANSISTORS_PER_GE, 2)


def compare_styles(design: CasDesign) -> CasAreaComparison:
    """Compute all three style areas for one generated design."""
    return CasAreaComparison(
        n=design.n,
        p=design.p,
        m=design.m,
        k=design.k,
        cell_count=design.area.cell_count,
        cell_ge=design.area.area_ge,
        optimized_ge=optimized_gate_estimate(design),
        pass_transistor_ge=pass_transistor_estimate(design),
    )
