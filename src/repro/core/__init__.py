"""The paper's contribution: the CAS-BUS test access mechanism.

Public surface:

* :class:`~repro.core.switch.SwitchScheme` and scheme enumeration
  policies -- the N/P wire-to-port mappings;
* :class:`~repro.core.instruction.InstructionSet` -- instruction codes,
  ``m`` and ``k`` (Table 1 quantities);
* :class:`~repro.core.cas.CoreAccessSwitch` -- the behavioural CAS with
  its three modes;
* :class:`~repro.core.generator.CasGenerator` /
  :func:`~repro.core.generator.generate_cas` -- netlist + VHDL + area
  generation (the paper's CAS generator);
* :class:`~repro.core.bus.CasChain` -- bus transport and the serial
  configuration chain;
* :class:`~repro.core.controller.SoCTestController` -- control program
  generation.

The SoC-level TAM assembly lives in :mod:`repro.core.tam` (imported
lazily to keep this package free of workload dependencies).
"""

from repro.core.switch import (
    POLICIES,
    SwitchScheme,
    enumerate_schemes,
    scheme_count,
)
from repro.core.instruction import (
    BYPASS_CODE,
    CHAIN_CODE,
    FIRST_TEST_CODE,
    Instruction,
    InstructionSet,
    instruction_count,
    register_width,
)
from repro.core.cas import (
    MODE_BYPASS,
    MODE_CHAIN,
    MODE_CONFIGURATION,
    MODE_TEST,
    BusRouting,
    CoreAccessSwitch,
)
from repro.core.generator import CasDesign, CasGenerator, generate_cas
from repro.core.vhdl import LintReport, emit_vhdl, lint_vhdl
from repro.core.bus import CasChain, ChainRouting, TestBus
from repro.core.controller import (
    ControlCycle,
    ControllerProgram,
    SoCTestController,
)
from repro.core.area import (
    CasAreaComparison,
    compare_styles,
    optimized_gate_estimate,
    pass_transistor_estimate,
)

__all__ = [
    "POLICIES",
    "SwitchScheme",
    "enumerate_schemes",
    "scheme_count",
    "BYPASS_CODE",
    "CHAIN_CODE",
    "FIRST_TEST_CODE",
    "Instruction",
    "InstructionSet",
    "instruction_count",
    "register_width",
    "MODE_BYPASS",
    "MODE_CHAIN",
    "MODE_CONFIGURATION",
    "MODE_TEST",
    "BusRouting",
    "CoreAccessSwitch",
    "CasDesign",
    "CasGenerator",
    "generate_cas",
    "LintReport",
    "emit_vhdl",
    "lint_vhdl",
    "CasChain",
    "ChainRouting",
    "TestBus",
    "ControlCycle",
    "ControllerProgram",
    "SoCTestController",
    "CasAreaComparison",
    "compare_styles",
    "optimized_gate_estimate",
    "pass_transistor_estimate",
]
