"""The central SoC test controller (paper, section 2: "All test control
signals ... are connected to a central SoC test controller which is in
charge of synchronizing test data and control").

The controller is modelled as a *program generator*: it turns high-level
intents (configure the chain, apply these stimuli) into a stream of
:class:`ControlCycle` records -- the per-clock values of the global
``config``/``update`` controls and the bus-entry wires.  The system
simulator consumes these cycles one by one, so controller behaviour is
fully decoupled from simulation mechanics and can be unit-tested as
plain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro import values as lv
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControlCycle:
    """Controller outputs for one clock cycle.

    Attributes:
        config: global configuration control (shifts instruction regs).
        update: update pulse (activates shifted instructions).
        bus_in: the N values driven at the bus entry point.
        tag: free-form annotation used by traces and reports.
    """

    config: bool
    update: bool
    bus_in: tuple[int, ...]
    tag: str = ""


@dataclass
class ControllerProgram:
    """A finite sequence of control cycles with phase bookkeeping."""

    n: int
    cycles: list[ControlCycle] = field(default_factory=list)
    phase_lengths: dict[str, int] = field(default_factory=dict)

    def append(self, cycle: ControlCycle, phase: str) -> None:
        if len(cycle.bus_in) != self.n:
            raise ConfigurationError(
                f"cycle drives {len(cycle.bus_in)} wires on an "
                f"{self.n}-wire bus"
            )
        self.cycles.append(cycle)
        self.phase_lengths[phase] = self.phase_lengths.get(phase, 0) + 1

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[ControlCycle]:
        return iter(self.cycles)


class SoCTestController:
    """Builds controller programs for a CAS-BUS of width ``n``."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"bus width must be >= 1, got {n}")
        self.n = n

    def idle_bus(self) -> tuple[int, ...]:
        return (lv.ZERO,) * self.n

    def new_program(self) -> ControllerProgram:
        return ControllerProgram(n=self.n)

    # -- phases --------------------------------------------------------------

    def add_configuration(
        self,
        program: ControllerProgram,
        bitstream: Sequence[int],
        phase: str = "configuration",
    ) -> None:
        """Shift a serial bitstream on wire 0, then pulse update.

        Cost: ``len(bitstream) + 1`` cycles -- the quantity the paper
        notes "does not affect the test time, since the ... configuration
        will only occur once at the beginning of a SoC testing session"
        (and once per reconfiguration, which experiment C3 accounts for).
        """
        idle_rest = (lv.ZERO,) * (self.n - 1)
        for bit in bitstream:
            if bit not in (0, 1):
                raise ConfigurationError(f"bitstream bit {bit!r} is not 0/1")
            value = lv.ONE if bit else lv.ZERO
            program.append(
                ControlCycle(
                    config=True,
                    update=False,
                    bus_in=(value,) + idle_rest,
                    tag="shift",
                ),
                phase,
            )
        program.append(
            ControlCycle(
                config=False,
                update=True,
                bus_in=self.idle_bus(),
                tag="update",
            ),
            phase,
        )

    def add_test_cycles(
        self,
        program: ControllerProgram,
        stimuli: Sequence[Sequence[int]],
        phase: str = "test",
        tag: str = "test",
    ) -> None:
        """Drive raw bus vectors for a test phase, one per cycle."""
        for vector in stimuli:
            if len(vector) != self.n:
                raise ConfigurationError(
                    f"stimulus drives {len(vector)} wires on an "
                    f"{self.n}-wire bus"
                )
            program.append(
                ControlCycle(
                    config=False,
                    update=False,
                    bus_in=tuple(vector),
                    tag=tag,
                ),
                phase,
            )

    def add_idle_cycles(
        self,
        program: ControllerProgram,
        count: int,
        phase: str = "idle",
    ) -> None:
        """Clock the system without driving data (e.g. while BIST runs)."""
        for _ in range(count):
            program.append(
                ControlCycle(
                    config=False,
                    update=False,
                    bus_in=self.idle_bus(),
                    tag="idle",
                ),
                phase,
            )
