"""Test bus and CAS chains.

The CAS-BUS threads all N bus wires through every CAS in a fixed
physical order (figure 1).  During configuration, the instruction
registers of all CASes form one serial chain on the first wire
(``e0``/``s0``); this module owns that chain's bit-ordering rules:

* the stream enters the CAS nearest the controller and flows towards
  the last CAS, so **the last CAS's bits are shifted first**;
* within one CAS the code is shifted **LSB first** (stage 0 of the
  shift register is the serial-out end and holds the code's bit 0).

Both rules are encapsulated in :meth:`CasChain.config_bitstream` and
round-trip-tested against the cycle-level shift implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.cas import BusRouting, CoreAccessSwitch


@dataclass(frozen=True)
class TestBus:
    """The SoC test bus: N serial wires (paper, section 2).

    Carries only naming/width; values flow through
    :class:`CasChain` / :mod:`repro.sim.system`.
    """

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"bus width must be >= 1, got {self.n}")

    def wire_names(self) -> list[str]:
        return [f"w{i}" for i in range(self.n)]


@dataclass(frozen=True)
class ChainRouting:
    """Result of routing the bus through a whole CAS chain.

    Attributes:
        bus_out: values leaving the last CAS (back to the controller).
        core_outputs: per-CAS core-side ``o`` values, chain order.
    """

    bus_out: tuple[int, ...]
    core_outputs: tuple[tuple[int, ...], ...]


class CasChain:
    """An ordered chain of CASes sharing one test bus.

    The chain owns no wrappers or cores; core-side return values are
    supplied per evaluation.  The full SoC assembly (wrappers, cores,
    hierarchy, CHAIN splicing) lives in :mod:`repro.sim.system`.
    """

    def __init__(self, cases: Sequence[CoreAccessSwitch]) -> None:
        if not cases:
            raise ConfigurationError("a CAS chain needs at least one CAS")
        widths = {cas.n for cas in cases}
        if len(widths) != 1:
            raise ConfigurationError(
                f"all CASes on one bus must share N; got widths {sorted(widths)}"
            )
        self.cases = list(cases)
        self.bus = TestBus(n=self.cases[0].n)

    @property
    def n(self) -> int:
        return self.bus.n

    def total_ir_bits(self) -> int:
        """Length of the serial configuration chain, in bits."""
        return sum(cas.k for cas in self.cases)

    # -- configuration ------------------------------------------------------

    def config_bitstream(self, codes: Sequence[int]) -> list[int]:
        """The serial stream that loads ``codes[i]`` into ``cases[i]``.

        Bits for the CAS farthest from the controller come first; each
        code is expanded LSB first.
        """
        if len(codes) != len(self.cases):
            raise ConfigurationError(
                f"need {len(self.cases)} codes, got {len(codes)}"
            )
        stream: list[int] = []
        for cas, code in reversed(list(zip(self.cases, codes))):
            if not cas.iset.is_valid_code(code):
                raise ConfigurationError(
                    f"{cas.name}: code {code} invalid (m={cas.iset.m})"
                )
            stream.extend(cas.iset.code_to_bits(code))
        return stream

    def shift_cycle(self, bit_in: int) -> int:
        """One configuration clock: shift every CAS, return the chain's
        serial output (what the controller reads back)."""
        bit = bit_in
        for cas in self.cases:
            bit = cas.shift(bit)
        return bit

    def update_all(self) -> list[int]:
        """Pulse update on every CAS; returns the new active codes."""
        return [cas.update() for cas in self.cases]

    def run_configuration(self, codes: Sequence[int]) -> int:
        """Shift a full configuration and update.

        Returns the number of clock cycles spent (bits shifted + the
        update cycle), the quantity used by the timing model.
        """
        stream = self.config_bitstream(codes)
        for bit in stream:
            self.shift_cycle(bit)
        self.update_all()
        for cas, code in zip(self.cases, codes):
            if cas.active_code != code:
                raise SimulationError(
                    f"{cas.name}: configuration landed on code "
                    f"{cas.active_code}, wanted {code}"
                )
        return len(stream) + 1

    def reset_all(self) -> None:
        for cas in self.cases:
            cas.reset()

    # -- data transport --------------------------------------------------------

    def route(
        self,
        bus_in: Sequence[int],
        core_returns: Sequence[Sequence[int]],
        config: bool = False,
    ) -> ChainRouting:
        """Evaluate the bus combinationally through the whole chain.

        Args:
            bus_in: values driven by the controller on bus entry.
            core_returns: per-CAS core-side return values (``i`` pins).
            config: global configuration control.
        """
        if len(core_returns) != len(self.cases):
            raise SimulationError(
                f"need core returns for {len(self.cases)} CASes, "
                f"got {len(core_returns)}"
            )
        values = tuple(bus_in)
        if len(values) != self.n:
            raise SimulationError(
                f"bus is {self.n} wires, got {len(values)} values"
            )
        outputs: list[tuple[int, ...]] = []
        for cas, returns in zip(self.cases, core_returns):
            routing: BusRouting = cas.route(values, returns, config=config)
            outputs.append(routing.o)
            values = routing.s
        return ChainRouting(bus_out=values, core_outputs=tuple(outputs))

    def drive_test_cycle(
        self,
        bus_in: Sequence[int],
        core_returns: Sequence[Sequence[int]],
    ) -> ChainRouting:
        """Route one TEST-mode cycle (no configuration)."""
        return self.route(bus_in, core_returns, config=False)

    def idle_bus(self) -> tuple[int, ...]:
        """The all-zero bus vector (what the controller drives at rest)."""
        return (lv.ZERO,) * self.n
