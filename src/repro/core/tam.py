"""SoC-level CAS-BUS assembly: the one-stop facade.

:class:`CasBusTamDesign` ties the whole flow together for a given SoC:
CAS generation per core (area/VHDL), schedule computation, behavioural
system construction and plan execution.  The examples and several
benchmarks drive everything through this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ScheduleError
from repro.core.generator import CasDesign, generate_cas
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.soc import SocSpec
from repro.schedule.scheduler import Schedule, ScheduledSession, schedule_greedy
from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan


@dataclass
class CasBusTamDesign:
    """A complete CAS-BUS TAM for one SoC."""

    soc: SocSpec
    cas_designs: dict[str, CasDesign] = field(default_factory=dict)

    @classmethod
    def for_soc(cls, soc: SocSpec) -> "CasBusTamDesign":
        """Generate the per-core CAS hardware for an SoC."""
        soc.validate()
        designs: dict[str, CasDesign] = {}

        def visit(spec_soc: SocSpec, prefix: str) -> None:
            for core in spec_soc.cores:
                path = f"{prefix}{core.name}"
                designs[path] = generate_cas(spec_soc.bus_width, core.p)
                if core.method == TestMethod.HIERARCHICAL:
                    assert core.inner is not None
                    visit(core.inner, f"{path}/")

        visit(soc, "")
        return cls(soc=soc, cas_designs=designs)

    # -- hardware cost -----------------------------------------------------

    @property
    def total_cas_cells(self) -> int:
        return sum(d.area.cell_count for d in self.cas_designs.values())

    @property
    def total_cas_ge(self) -> float:
        return round(
            sum(d.area.area_ge for d in self.cas_designs.values()), 2
        )

    @property
    def total_config_bits(self) -> int:
        """Length of the full serial configuration chain (CAS IRs)."""
        return sum(d.k for d in self.cas_designs.values())

    def vhdl_bundle(self) -> dict[str, str]:
        """VHDL text for every distinct (N, P) CAS in the design."""
        seen: dict[tuple[int, int], str] = {}
        for design in self.cas_designs.values():
            seen.setdefault((design.n, design.p), design.vhdl)
        return {
            f"cas_{n}_{p}.vhd": text for (n, p), text in sorted(seen.items())
        }

    # -- scheduling ---------------------------------------------------------------

    def schedule(self) -> Schedule:
        """Greedy schedule over the SoC's top-level cores."""
        params = [core.test_params() for core in self.soc.cores]
        return schedule_greedy(params, self.soc.bus_width)

    def executable_plan(self) -> TestPlan:
        """An executor-ready plan covering every core once.

        Flat cores follow the greedy schedule; each hierarchical core
        expands into per-inner-core sessions (the inner bus usually
        cannot host all inner cores at once).
        """
        sessions: list[SessionPlan] = []
        flat_params = [
            core.test_params()
            for core in self.soc.cores
            if core.method != TestMethod.HIERARCHICAL
        ]
        if flat_params:
            schedule = schedule_greedy(
                flat_params, self.soc.bus_width, exact_wires=True
            )
            for scheduled in schedule.sessions:
                sessions.append(
                    self._flat_session(scheduled, label="flat")
                )
        for core in self.soc.cores:
            if core.method != TestMethod.HIERARCHICAL:
                continue
            sessions.extend(self._hierarchical_sessions(core))
        if not sessions:
            raise ScheduleError(f"{self.soc.name}: nothing to test")
        return TestPlan(sessions=tuple(sessions), label=self.soc.name)

    def _flat_session(self, scheduled: ScheduledSession,
                      label: str) -> SessionPlan:
        assignments = []
        cursor = 0
        for entry in scheduled.entries:
            spec = self.soc.core_named(entry.params.name)
            wires = tuple(range(cursor, cursor + spec.p))
            cursor += spec.p
            assignments.append(
                CoreAssignment(path=(spec.name,), levels=(wires,))
            )
        return SessionPlan(assignments=tuple(assignments), label=label)

    def _hierarchical_sessions(
        self, core: CoreSpec
    ) -> list[SessionPlan]:
        assert core.inner is not None
        outer_wires = tuple(range(core.p))
        sessions = []
        inner_params = [c.test_params() for c in core.inner.cores]
        inner_schedule = schedule_greedy(
            inner_params, core.inner.bus_width, exact_wires=True
        )
        for scheduled in inner_schedule.sessions:
            assignments = []
            cursor = 0
            for entry in scheduled.entries:
                inner_spec = core.inner.core_named(entry.params.name)
                inner_wires = tuple(range(cursor, cursor + inner_spec.p))
                cursor += inner_spec.p
                assignments.append(
                    CoreAssignment(
                        path=(core.name, inner_spec.name),
                        levels=(outer_wires, inner_wires),
                    )
                )
            sessions.append(
                SessionPlan(assignments=tuple(assignments),
                            label=f"{core.name}-inner")
            )
        return sessions

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        *,
        inject_faults: Mapping[str, tuple[int, int]] | None = None,
        plan: TestPlan | None = None,
    ):
        """Build the behavioural system and execute a plan.

        Returns the :class:`~repro.sim.session.ProgramResult`.
        """
        from repro.sim.session import SessionExecutor
        from repro.sim.system import build_system

        system = build_system(self.soc, inject_faults=inject_faults)
        executor = SessionExecutor(system)
        return executor.run_plan(plan or self.executable_plan())
