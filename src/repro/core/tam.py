"""SoC-level CAS-BUS assembly: the one-stop facade.

:class:`CasBusTamDesign` ties the whole flow together for a given SoC:
CAS generation per core (area/VHDL), schedule computation, behavioural
system construction and plan execution.

This class predates the :mod:`repro.api` experiment layer and remains
fully supported; new code should prefer
``repro.api.Experiment(soc).with_architecture("casbus")``, which wraps
this facade behind the same lifecycle every baseline architecture
offers (the registry exposes it as ``get_architecture("casbus")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ScheduleError
from repro.core.generator import CasDesign, generate_cas
from repro.soc.core import CoreSpec, TestMethod
from repro.soc.soc import SocSpec
from repro.schedule.scheduler import Schedule, ScheduledSession
from repro.sim.plan import CoreAssignment, SessionPlan, TestPlan


@dataclass
class CasBusTamDesign:
    """A complete CAS-BUS TAM for one SoC."""

    soc: SocSpec
    cas_designs: dict[str, CasDesign] = field(default_factory=dict)

    @classmethod
    def for_soc(cls, soc: SocSpec, *,
                policy: str | None = "all") -> "CasBusTamDesign":
        """Generate the per-core CAS hardware for an SoC.

        ``policy`` is the scheme-enumeration policy of every generated
        CAS; the default ``"all"`` is the historical behaviour, and
        ``None`` applies the designer rule of
        :func:`repro.core.instruction.practical_policy` per CAS.
        """
        from repro.core.instruction import practical_policy

        soc.validate()
        designs: dict[str, CasDesign] = {}

        def visit(spec_soc: SocSpec, prefix: str) -> None:
            for core in spec_soc.cores:
                path = f"{prefix}{core.name}"
                cas_policy = (practical_policy(spec_soc.bus_width, core.p)
                              if policy is None else policy)
                designs[path] = generate_cas(
                    spec_soc.bus_width, core.p, policy=cas_policy
                )
                if core.method == TestMethod.HIERARCHICAL:
                    assert core.inner is not None
                    visit(core.inner, f"{path}/")

        visit(soc, "")
        return cls(soc=soc, cas_designs=designs)

    # -- hardware cost -----------------------------------------------------

    @property
    def total_cas_cells(self) -> int:
        return sum(d.area.cell_count for d in self.cas_designs.values())

    @property
    def total_cas_ge(self) -> float:
        return round(
            sum(d.area.area_ge for d in self.cas_designs.values()), 2
        )

    @property
    def total_config_bits(self) -> int:
        """Length of the full serial configuration chain (CAS IRs)."""
        return sum(d.k for d in self.cas_designs.values())

    def vhdl_bundle(self) -> dict[str, str]:
        """VHDL text for every distinct (N, P) CAS in the design."""
        seen: dict[tuple[int, int], str] = {}
        for design in self.cas_designs.values():
            seen.setdefault((design.n, design.p), design.vhdl)
        return {
            f"cas_{n}_{p}.vhd": text for (n, p), text in sorted(seen.items())
        }

    # -- scheduling ---------------------------------------------------------------

    def schedule(self, strategy: str = "greedy") -> Schedule:
        """Schedule the SoC's top-level cores with a named strategy.

        ``strategy`` is a :mod:`repro.api` scheduler name (``greedy``,
        ``exhaustive``, ``balanced-lpt``, ``preemptive``,
        ``reconfig``); the default reproduces the historical greedy
        session packing and returns its
        :class:`~repro.schedule.scheduler.Schedule`.  Other strategies
        return their own schedule objects (the outcome's ``detail``).
        """
        from repro.api.registry import get_scheduler

        params = [core.test_params() for core in self.soc.cores]
        outcome = get_scheduler(strategy).schedule(
            params, self.soc.bus_width
        )
        return outcome.detail

    def executable_plan(self) -> TestPlan:
        """An executor-ready plan covering every core once.

        Flat cores follow the greedy schedule; each hierarchical core
        expands into per-inner-core sessions (the inner bus usually
        cannot host all inner cores at once).
        """
        sessions: list[SessionPlan] = []
        flat_params = [
            core.test_params()
            for core in self.soc.cores
            if core.method != TestMethod.HIERARCHICAL
        ]
        if flat_params:
            schedule = self._greedy_exact(flat_params, self.soc.bus_width)
            for scheduled in schedule.sessions:
                sessions.append(
                    self._flat_session(scheduled, label="flat")
                )
        for core in self.soc.cores:
            if core.method != TestMethod.HIERARCHICAL:
                continue
            sessions.extend(self._hierarchical_sessions(core))
        if not sessions:
            raise ScheduleError(f"{self.soc.name}: nothing to test")
        return TestPlan(sessions=tuple(sessions), label=self.soc.name)

    @staticmethod
    def _greedy_exact(params, bus_width: int) -> Schedule:
        """Executor-compatible packing: exact P wires per core.

        Routed through the registered ``greedy`` strategy (the only
        executable one) so facade and experiment layer share one
        scheduler implementation.
        """
        from repro.api.registry import get_scheduler

        return get_scheduler("greedy").schedule(
            params, bus_width, exact_wires=True
        ).detail

    def _flat_session(self, scheduled: ScheduledSession,
                      label: str) -> SessionPlan:
        assignments = []
        cursor = 0
        for entry in scheduled.entries:
            spec = self.soc.core_named(entry.params.name)
            wires = tuple(range(cursor, cursor + spec.p))
            cursor += spec.p
            assignments.append(
                CoreAssignment(path=(spec.name,), levels=(wires,))
            )
        return SessionPlan(assignments=tuple(assignments), label=label)

    def _hierarchical_sessions(
        self, core: CoreSpec
    ) -> list[SessionPlan]:
        assert core.inner is not None
        outer_wires = tuple(range(core.p))
        sessions = []
        inner_params = [c.test_params() for c in core.inner.cores]
        inner_schedule = self._greedy_exact(
            inner_params, core.inner.bus_width
        )
        for scheduled in inner_schedule.sessions:
            assignments = []
            cursor = 0
            for entry in scheduled.entries:
                inner_spec = core.inner.core_named(entry.params.name)
                inner_wires = tuple(range(cursor, cursor + inner_spec.p))
                cursor += inner_spec.p
                assignments.append(
                    CoreAssignment(
                        path=(core.name, inner_spec.name),
                        levels=(outer_wires, inner_wires),
                    )
                )
            sessions.append(
                SessionPlan(assignments=tuple(assignments),
                            label=f"{core.name}-inner")
            )
        return sessions

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        *,
        inject_faults: Mapping[str, tuple[int, int]] | None = None,
        plan: TestPlan | None = None,
        backend: str = "auto",
        capture_syndromes: bool = False,
        verify: bool = True,
    ):
        """Build the behavioural system and execute a plan.

        ``backend`` selects the execution engine (``"auto"``,
        ``"kernel"``, ``"legacy"``) -- see
        :class:`~repro.sim.session.SessionExecutor`.
        ``capture_syndromes`` records bit-level failing positions on
        every core result (:mod:`repro.diagnose.syndrome`).
        ``verify`` statically checks the wired system and every
        session's artifacts before dispatch (:mod:`repro.verify`).

        Returns the :class:`~repro.sim.session.ProgramResult`.
        """
        from repro.sim.session import SessionExecutor
        from repro.sim.system import build_system

        system = build_system(self.soc, inject_faults=inject_faults)
        executor = SessionExecutor(
            system, backend=backend,
            capture_syndromes=capture_syndromes,
            verify=verify,
        )
        return executor.run_plan(plan or self.executable_plan())
