"""Gate-level CAS: the generated netlist as a drop-in switch model.

The strongest cross-layer check in the reproduction: a
:class:`GateLevelCoreAccessSwitch` exposes the exact interface of the
behavioural :class:`~repro.core.cas.CoreAccessSwitch` but evaluates the
*generated netlist* (four-valued, tri-states and all) through
:class:`~repro.netlist.simulate.NetlistSimulator`.  The system
simulator can therefore run whole test sessions with selected CASes
replaced by their own synthesised gates
(``build_system(..., gate_level={"core"})``) and must observe identical
behaviour -- which the integration suite asserts.
"""

from __future__ import annotations

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.netlist.simulate import NetlistSimulator
from repro.core.cas import BusRouting, MODE_BYPASS, MODE_CHAIN, \
    MODE_CONFIGURATION, MODE_TEST
from repro.core.generator import CasDesign
from repro.core.instruction import BYPASS_CODE, Instruction, KIND_TEST


class GateLevelCoreAccessSwitch:
    """A CAS whose switching fabric is its generated netlist.

    Interface-compatible with
    :class:`~repro.core.cas.CoreAccessSwitch`; see there for the
    semantics.  State (instruction shift stage + update stage) lives in
    the netlist's flip-flops.
    """

    def __init__(
        self,
        design: CasDesign,
        name: str = "cas_gates",
        strict: bool = True,
    ) -> None:
        self.design = design
        self.iset = design.iset
        self.name = name
        self.strict = strict
        self.sim = NetlistSimulator(design.netlist)
        self.reset()

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.iset.n

    @property
    def p(self) -> int:
        return self.iset.p

    @property
    def k(self) -> int:
        return self.iset.k

    @property
    def shift_register(self) -> tuple[int, ...]:
        return tuple(
            1 if self.sim.state_of(f"ir_{b}") == lv.ONE else 0
            for b in range(self.k)
        )

    @property
    def active_code(self) -> int:
        bits = tuple(
            1 if self.sim.state_of(f"upd_{b}") == lv.ONE else 0
            for b in range(self.k)
        )
        return self.iset.bits_to_code(bits)

    @property
    def active_instruction(self) -> Instruction:
        return self.iset.decode(self.active_code)

    def mode(self, config: bool = False) -> str:
        if config:
            return MODE_CONFIGURATION
        instruction = self.active_instruction
        if instruction.kind == KIND_TEST:
            return MODE_TEST
        if instruction.code == BYPASS_CODE:
            return MODE_BYPASS
        return MODE_CHAIN

    # -- sequential interface ------------------------------------------------

    def reset(self) -> None:
        """Power-on: both register stages cleared, bus quiescent."""
        self.sim.load_state(
            {f"ir_{b}": lv.ZERO for b in range(self.k)}
        )
        self.sim.load_state(
            {f"upd_{b}": lv.ZERO for b in range(self.k)}
        )
        quiet = {"config": lv.ZERO, "update": lv.ZERO}
        quiet.update({f"e{w}": lv.ZERO for w in range(self.n)})
        quiet.update({f"i{j}": lv.ZERO for j in range(self.p)})
        self.sim.set_inputs(quiet)

    def serial_out(self) -> int:
        return 1 if self.sim.state_of("ir_0") == lv.ONE else 0

    def shift(self, serial_in: int) -> int:
        """One configuration clock on the real gates."""
        if serial_in not in (0, 1):
            raise SimulationError(
                f"{self.name}: serial input must be 0/1, got {serial_in!r}"
            )
        out_bit = self.serial_out()
        self.sim.set_inputs({
            "config": lv.ONE,
            "update": lv.ZERO,
            "e0": lv.ONE if serial_in else lv.ZERO,
        })
        self.sim.clock()
        self.sim.set_inputs({"config": lv.ZERO})
        return out_bit

    def load_code(self, code: int) -> None:
        bits = self.iset.code_to_bits(code)
        self.sim.load_state(
            {f"ir_{b}": (lv.ONE if bits[b] else lv.ZERO)
             for b in range(self.k)}
        )

    def update(self) -> int:
        code = self.iset.bits_to_code(self.shift_register)
        if not self.iset.is_valid_code(code):
            if self.strict:
                raise ConfigurationError(
                    f"{self.name}: shifted pattern {code:#x} is not one "
                    f"of the {self.iset.m} instructions"
                )
            code = BYPASS_CODE
            self.load_code(code)
        self.sim.set_inputs({"config": lv.ZERO, "update": lv.ONE})
        self.sim.clock()
        self.sim.set_inputs({"update": lv.ZERO})
        return self.active_code

    # -- combinational interface ----------------------------------------------

    def route(self, e, core_returns, config: bool = False) -> BusRouting:
        if len(e) != self.n:
            raise SimulationError(
                f"{self.name}: expected {self.n} bus inputs, got {len(e)}"
            )
        if len(core_returns) != self.p:
            raise SimulationError(
                f"{self.name}: expected {self.p} core returns, "
                f"got {len(core_returns)}"
            )
        assignment = {"config": lv.ONE if config else lv.ZERO,
                      "update": lv.ZERO}
        assignment.update({f"e{w}": e[w] for w in range(self.n)})
        assignment.update(
            {f"i{j}": core_returns[j] for j in range(self.p)}
        )
        self.sim.set_inputs(assignment)
        s = tuple(self.sim.read(f"s{w}") for w in range(self.n))
        o = tuple(self.sim.read(f"o{j}") for j in range(self.p))
        return BusRouting(s=s, o=o)

    def __repr__(self) -> str:
        return (
            f"GateLevelCoreAccessSwitch({self.name!r}, n={self.n}, "
            f"p={self.p}, active={self.active_instruction.describe()})"
        )
