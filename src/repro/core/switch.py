"""Switch schemes: the N/P wire-to-port mappings a CAS can adopt.

A scheme assigns each of the core's ``P`` test ports a distinct test-bus
wire.  The paper's routing heuristic (section 3.2) is baked into the
scheme semantics: when bus input ``e_i`` feeds core input ``o_j``, the
core output ``i_j`` returns on bus output ``s_i`` -- so a bus wire keeps
its index across a tested core and a single control word describes a
complete source-to-sink path.

Scheme enumeration *policies* model the paper's instruction-count
heuristics:

* ``"all"`` -- every injective mapping: ``N!/(N-P)!`` schemes.  Combined
  with the two fixed instructions this reproduces every Table 1 row.
* ``"order_preserving"`` -- wires assigned in increasing order (ports
  cannot cross): ``C(N, P)`` schemes.  One of the paper's "other
  heuristics ... to limit the total number m".
* ``"contiguous"`` -- a window of ``P`` adjacent wires, in order:
  ``N - P + 1`` schemes.
* ``"identity"`` -- the single scheme wiring port ``j`` to wire ``j``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Recognised enumeration policies, cheapest-last.
POLICIES = ("all", "order_preserving", "contiguous", "identity")


@dataclass(frozen=True, order=True)
class SwitchScheme:
    """One N/P switch configuration.

    Attributes:
        n: test bus width.
        p: number of core test ports.
        wire_of_port: tuple where entry ``j`` is the bus wire feeding
            core port ``j``; entries are distinct.
    """

    n: int
    p: int
    wire_of_port: tuple[int, ...]

    def __post_init__(self) -> None:
        validate_width(self.n, self.p)
        if len(self.wire_of_port) != self.p:
            raise ConfigurationError(
                f"scheme maps {len(self.wire_of_port)} ports, expected {self.p}"
            )
        seen = set()
        for wire in self.wire_of_port:
            if not 0 <= wire < self.n:
                raise ConfigurationError(
                    f"wire index {wire} out of range for bus width {self.n}"
                )
            if wire in seen:
                raise ConfigurationError(f"wire {wire} assigned to two ports")
            seen.add(wire)

    @property
    def port_of_wire(self) -> dict[int, int]:
        """Inverse mapping: bus wire -> core port, for switched wires only."""
        return {wire: port for port, wire in enumerate(self.wire_of_port)}

    @property
    def switched_wires(self) -> frozenset[int]:
        """Bus wires routed to the core under this scheme."""
        return frozenset(self.wire_of_port)

    @property
    def bypassed_wires(self) -> tuple[int, ...]:
        """Bus wires that pass straight through the CAS."""
        switched = self.switched_wires
        return tuple(w for w in range(self.n) if w not in switched)

    def describe(self) -> str:
        """Human-readable routing, e.g. ``e2->o0/i0->s2, e0->o1/i1->s0``."""
        parts = [
            f"e{wire}->o{port}/i{port}->s{wire}"
            for port, wire in enumerate(self.wire_of_port)
        ]
        return ", ".join(parts)


def validate_width(n: int, p: int) -> None:
    """Enforce the paper's constraints: N >= 1 and 1 <= P <= N."""
    if n < 1:
        raise ConfigurationError(f"test bus width N must be >= 1, got {n}")
    if not 1 <= p <= n:
        raise ConfigurationError(f"P must satisfy 1 <= P <= N, got P={p}, N={n}")


def enumerate_schemes(n: int, p: int, policy: str = "all") -> list[SwitchScheme]:
    """All switch schemes for an (N, P) CAS under a policy, in canonical
    (lexicographic) order.  Canonical order is what instruction encodings
    are assigned from, so it must be stable across runs."""
    validate_width(n, p)
    if policy == "all":
        mappings = itertools.permutations(range(n), p)
    elif policy == "order_preserving":
        mappings = itertools.combinations(range(n), p)
    elif policy == "contiguous":
        mappings = (tuple(range(start, start + p)) for start in range(n - p + 1))
    elif policy == "identity":
        mappings = (tuple(range(p)),)
    else:
        raise ConfigurationError(
            f"unknown scheme policy {policy!r}; choose from {POLICIES}"
        )
    return [SwitchScheme(n=n, p=p, wire_of_port=m) for m in mappings]


def scheme_count(n: int, p: int, policy: str = "all") -> int:
    """Closed-form count of schemes under a policy (no enumeration)."""
    validate_width(n, p)
    if policy == "all":
        return math.factorial(n) // math.factorial(n - p)
    if policy == "order_preserving":
        return math.comb(n, p)
    if policy == "contiguous":
        return n - p + 1
    if policy == "identity":
        return 1
    raise ConfigurationError(
        f"unknown scheme policy {policy!r}; choose from {POLICIES}"
    )
