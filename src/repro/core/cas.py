"""Behavioural model of the Core Access Switch (paper, section 3).

The CAS is a configurable switcher between the ``N``-wire test bus and
the ``P`` test terminals of one wrapped core.  State:

* a ``k``-bit **instruction register** (shift stage), serially loaded
  through the first test-bus wire (``e0``/``s0``) while the global
  ``config`` control is asserted;
* a ``k``-bit **update stage** holding the *active* instruction --
  configuration shifting never disturbs the active switch scheme until
  ``update`` is pulsed (the paper's "update mechanism").

Modes (paper, section 3.1):

* **CONFIGURATION** -- ``config`` asserted: the instruction register
  shifts, all core-side terminals are high-impedance, bus wires 1..N-1
  bypass, and wire 0 carries the serial chain.
* **BYPASS** -- active code 0: every wire passes straight through.
* **TEST** -- an active switch scheme: ``P`` wires are routed to the
  core with the pairing heuristic (``e_i -> o_j`` implies
  ``i_j -> s_i``), the remaining ``N - P`` wires bypass.

The CHAIN instruction (code 1) behaves like BYPASS on the bus; its role
-- splicing the wrapper instruction register into the serial
configuration chain -- is honoured by the system simulator
(:mod:`repro.sim.system`), which owns the serial path wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import values as lv
from repro.errors import ConfigurationError, SimulationError
from repro.core.instruction import (
    BYPASS_CODE,
    KIND_TEST,
    Instruction,
    InstructionSet,
)

#: Mode names, as reported by :meth:`CoreAccessSwitch.mode`.
MODE_CONFIGURATION = "configuration"
MODE_BYPASS = "bypass"
MODE_CHAIN = "chain"
MODE_TEST = "test"


@dataclass(frozen=True)
class BusRouting:
    """Result of one combinational routing evaluation.

    Attributes:
        s: values presented on the CAS bus outputs ``s0..s{N-1}``.
        o: values presented on the core-side outputs ``o0..o{P-1}``
           (``Z`` whenever the CAS does not drive the core).
    """

    s: tuple[int, ...]
    o: tuple[int, ...]


class CoreAccessSwitch:
    """Cycle-level behavioural CAS.

    The object is deliberately split into a *sequential* interface
    (:meth:`shift`, :meth:`update`, :meth:`reset`) and a *combinational*
    one (:meth:`route`, :meth:`serial_out`), so a system simulator can
    evaluate bus values and clock state in the correct order.
    """

    def __init__(
        self,
        iset: InstructionSet,
        name: str = "cas",
        strict: bool = True,
    ) -> None:
        self.iset = iset
        self.name = name
        self.strict = strict
        self._shift_reg: list[int] = [0] * iset.k
        self._active_code: int = BYPASS_CODE

    # -- introspection ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.iset.n

    @property
    def p(self) -> int:
        return self.iset.p

    @property
    def k(self) -> int:
        return self.iset.k

    @property
    def shift_register(self) -> tuple[int, ...]:
        """Current shift-stage bits, stage 0 (serial-out end) first."""
        return tuple(self._shift_reg)

    @property
    def active_code(self) -> int:
        """The instruction code currently applied to the switch."""
        return self._active_code

    @property
    def active_instruction(self) -> Instruction:
        return self.iset.decode(self._active_code)

    def mode(self, config: bool = False) -> str:
        """The functional mode under the given ``config`` control value."""
        if config:
            return MODE_CONFIGURATION
        instruction = self.active_instruction
        if instruction.kind == KIND_TEST:
            return MODE_TEST
        if instruction.code == BYPASS_CODE:
            return MODE_BYPASS
        return MODE_CHAIN

    # -- sequential interface ------------------------------------------------

    def reset(self) -> None:
        """Power-on state: shift stage cleared, BYPASS active."""
        self._shift_reg = [0] * self.iset.k
        self._active_code = BYPASS_CODE

    def serial_out(self) -> int:
        """Bit presented on the serial output *before* the next shift."""
        return self._shift_reg[0]

    def shift(self, serial_in: int) -> int:
        """One configuration shift: returns the bit shifted out.

        Stage 0 leaves through the serial output; ``serial_in`` enters
        at stage ``k-1``.  After ``k`` shifts of a code's little-endian
        bits (LSB first) the register holds exactly that code.
        """
        if serial_in not in (0, 1):
            raise SimulationError(
                f"{self.name}: serial input must be 0/1, got {serial_in!r}"
            )
        out_bit = self._shift_reg[0]
        self._shift_reg = self._shift_reg[1:] + [serial_in]
        return out_bit

    def load_code(self, code: int) -> None:
        """Directly load the shift stage with a code (test convenience)."""
        self._shift_reg = list(self.iset.code_to_bits(code))

    def update(self) -> int:
        """Transfer the shift stage into the update stage.

        Returns the newly active code.  In strict mode an out-of-range
        bit pattern raises; otherwise it degrades to BYPASS, modelling a
        decoder with no matching select.
        """
        code = self.iset.bits_to_code(tuple(self._shift_reg))
        if not self.iset.is_valid_code(code):
            if self.strict:
                raise ConfigurationError(
                    f"{self.name}: shifted pattern {code:#x} is not one of "
                    f"the {self.iset.m} instructions"
                )
            code = BYPASS_CODE
        self._active_code = code
        return code

    # -- combinational interface ----------------------------------------------

    def route(
        self,
        e: Sequence[int],
        core_returns: Sequence[int],
        config: bool = False,
    ) -> BusRouting:
        """Evaluate the switch for one cycle.

        Args:
            e: values on bus inputs ``e0..e{N-1}``.
            core_returns: values on core-side inputs ``i0..i{P-1}``
               (what the wrapper drives back at the CAS).
            config: the global configuration control.

        Returns:
            The bus and core-side output values.  In CONFIGURATION mode
            ``s0`` carries this CAS's serial output; the system
            simulator replaces it when the CHAIN splice is active.
        """
        if len(e) != self.n:
            raise SimulationError(
                f"{self.name}: expected {self.n} bus inputs, got {len(e)}"
            )
        if len(core_returns) != self.p:
            raise SimulationError(
                f"{self.name}: expected {self.p} core returns, "
                f"got {len(core_returns)}"
            )
        if config:
            s = (self._to_value(self.serial_out()),) + tuple(e[1:])
            return BusRouting(s=s, o=(lv.Z,) * self.p)
        instruction = self.active_instruction
        if instruction.kind != KIND_TEST:
            return BusRouting(s=tuple(e), o=(lv.Z,) * self.p)
        scheme = instruction.scheme
        assert scheme is not None
        o = tuple(lv.v_buf(e[wire]) for wire in scheme.wire_of_port)
        port_of_wire = scheme.port_of_wire
        s = tuple(
            lv.v_buf(core_returns[port_of_wire[wire]])
            if wire in port_of_wire
            else e[wire]
            for wire in range(self.n)
        )
        return BusRouting(s=s, o=o)

    @staticmethod
    def _to_value(bit: int) -> int:
        return lv.ONE if bit else lv.ZERO

    def __repr__(self) -> str:
        return (
            f"CoreAccessSwitch({self.name!r}, n={self.n}, p={self.p}, "
            f"active={self.active_instruction.describe()})"
        )
