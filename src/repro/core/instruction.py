"""CAS instruction sets: codes, encodings and the Table 1 quantities.

Every CAS instruction set contains, in this fixed code order:

* code 0 -- **BYPASS** (paper: "when all the instruction register bits
  are 0, the CAS is in a BYPASS mode"),
* code 1 -- **CHAIN**, the optional tri-state mechanism of section 3.1
  that inserts the core's wrapper instruction register into the serial
  configuration chain behind the CAS instruction register,
* codes 2 .. m-1 -- one **TEST** instruction per switch scheme, in
  canonical scheme order.

Under the default ``"all"`` policy this gives ``m = N!/(N-P)! + 2``,
which matches all twelve (N, P, m) rows of Table 1, and the register
width follows the paper's formula ``k = ceil(log2(m))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.errors import ConfigurationError
from repro.core.switch import (
    SwitchScheme,
    enumerate_schemes,
    scheme_count,
    validate_width,
)

#: Fixed instruction codes.
BYPASS_CODE = 0
CHAIN_CODE = 1
FIRST_TEST_CODE = 2

#: Instruction kind tags.
KIND_BYPASS = "bypass"
KIND_CHAIN = "chain"
KIND_TEST = "test"


@dataclass(frozen=True)
class Instruction:
    """One decoded CAS instruction.

    Attributes:
        code: integer encoding (what the instruction register holds).
        kind: one of ``"bypass"``, ``"chain"``, ``"test"``.
        scheme: the switch scheme for TEST instructions, else ``None``.
    """

    code: int
    kind: str
    scheme: SwitchScheme | None = None

    def describe(self) -> str:
        if self.kind == KIND_TEST:
            assert self.scheme is not None
            return f"TEST[{self.code}] {self.scheme.describe()}"
        return self.kind.upper()


def register_width(m: int) -> int:
    """The paper's formula ``k = ceil(log2(m))`` (at least 1 bit)."""
    if m < 1:
        raise ConfigurationError(f"instruction count must be >= 1, got {m}")
    return max(1, math.ceil(math.log2(m)))


def instruction_count(n: int, p: int, policy: str = "all") -> int:
    """Closed-form m for an (N, P) CAS: scheme count + BYPASS + CHAIN."""
    return scheme_count(n, p, policy) + 2


def practical_policy(n: int, p: int, m_budget: int = 256) -> str:
    """The scheme policy a designer would pick for an (N, P) CAS.

    Section 3.2: "other heuristics are used to limit the total number m
    of combinations".  The full permutation set is kept while it fits
    ``m_budget`` instructions; otherwise enumeration degrades to
    order-preserving mappings, then to contiguous windows.
    """
    if instruction_count(n, p, "all") <= m_budget:
        return "all"
    if instruction_count(n, p, "order_preserving") <= m_budget:
        return "order_preserving"
    return "contiguous"


class InstructionSet:
    """The complete instruction set of one (N, P) CAS.

    Instances are immutable and hashable on ``(n, p, policy)``; the
    scheme list is derived deterministically.
    """

    def __init__(self, n: int, p: int, policy: str = "all") -> None:
        validate_width(n, p)
        self.n = n
        self.p = p
        self.policy = policy
        self._schemes = enumerate_schemes(n, p, policy)
        self._code_of_scheme = {
            scheme: FIRST_TEST_CODE + index
            for index, scheme in enumerate(self._schemes)
        }

    # -- sizes ---------------------------------------------------------------

    @property
    def m(self) -> int:
        """Total number of instructions (Table 1 column m)."""
        return len(self._schemes) + 2

    @property
    def k(self) -> int:
        """Instruction register width (Table 1 column k)."""
        return register_width(self.m)

    @cached_property
    def schemes(self) -> tuple[SwitchScheme, ...]:
        """All TEST schemes in canonical (code) order."""
        return tuple(self._schemes)

    # -- encoding ----------------------------------------------------------

    def encode(self, scheme: SwitchScheme) -> int:
        """Instruction code selecting a given switch scheme."""
        try:
            return self._code_of_scheme[scheme]
        except KeyError:
            raise ConfigurationError(
                f"scheme {scheme.wire_of_port} is not in the "
                f"{self.policy!r} instruction set of CAS({self.n},{self.p})"
            ) from None

    def decode(self, code: int) -> Instruction:
        """Decode an instruction register value.

        Raises :class:`~repro.errors.ConfigurationError` for codes
        outside ``[0, m)`` -- those bit patterns exist whenever ``m`` is
        not a power of two but are never legal to load.
        """
        if code == BYPASS_CODE:
            return Instruction(code=code, kind=KIND_BYPASS)
        if code == CHAIN_CODE:
            return Instruction(code=code, kind=KIND_CHAIN)
        index = code - FIRST_TEST_CODE
        if 0 <= index < len(self._schemes):
            return Instruction(code=code, kind=KIND_TEST, scheme=self._schemes[index])
        raise ConfigurationError(
            f"code {code} out of range for CAS({self.n},{self.p}) with m={self.m}"
        )

    def is_valid_code(self, code: int) -> bool:
        """True when ``code`` names a real instruction."""
        return 0 <= code < self.m

    def instructions(self) -> list[Instruction]:
        """All instructions in code order."""
        return [self.decode(code) for code in range(self.m)]

    def code_to_bits(self, code: int) -> tuple[int, ...]:
        """Little-endian bit expansion of a code, ``k`` bits wide.

        Bit 0 of the result is register stage 0, which is the stage
        nearest the serial output (see
        :class:`repro.core.cas.CoreAccessSwitch`).
        """
        if not 0 <= code < (1 << self.k):
            raise ConfigurationError(
                f"code {code} does not fit in a {self.k}-bit register"
            )
        return tuple((code >> bit) & 1 for bit in range(self.k))

    def bits_to_code(self, bits: tuple[int, ...]) -> int:
        """Inverse of :meth:`code_to_bits`."""
        if len(bits) != self.k:
            raise ConfigurationError(
                f"expected {self.k} bits, got {len(bits)}"
            )
        code = 0
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ConfigurationError(f"bit {index} is {bit!r}, not 0/1")
            code |= bit << index
        return code

    def __repr__(self) -> str:
        return (
            f"InstructionSet(n={self.n}, p={self.p}, policy={self.policy!r}, "
            f"m={self.m}, k={self.k})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstructionSet):
            return NotImplemented
        return (self.n, self.p, self.policy) == (other.n, other.p, other.policy)

    def __hash__(self) -> int:
        return hash((self.n, self.p, self.policy))
