"""Static checks on wired TAM systems and defect scenarios.

A built :class:`~repro.sim.system.CasBusSystem` encodes the paper's
figure-1 wiring: every core sits behind a CAS switching exactly its P
terminals out of the enclosing N-wire bus, and every flat core's P1500
wrapper chains form a bijection onto its boundary cells and flip-flops.
A :class:`~repro.diagnose.inject.DefectScenario` must reference parts
of the SoC that actually exist -- and respect the
:func:`~repro.sim.kernel.kernel_supports` fallback rules when a
backend is forced.

Rules::

    DES001  CAS port width disagrees with the core's P
    DES002  wrapper chains are not a bijection onto the boundary cells
    DES003  CAS bus width disagrees with the enclosing bus
    SCN001  scenario victim core does not exist (or has no flat logic)
    SCN002  scenario wire outside the bus
    SCN003  scenario boundary cell outside the wrapper
    SCN004  transport defect forced onto the compiled kernel backend
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.soc.core import TestMethod
from repro.soc.soc import SocSpec
from repro.diagnose.inject import (
    KIND_BRIDGE,
    KIND_DEAD_CELL,
    KIND_OPEN_WIRE,
    KIND_STUCK_AT,
    DefectScenario,
    spec_at,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    VerifyReport,
    rule,
)

DES001 = rule("DES001", SEVERITY_ERROR,
              "CAS port width disagrees with the core's P")
DES002 = rule("DES002", SEVERITY_ERROR,
              "wrapper chains are not a bijection onto the boundary "
              "cells")
DES003 = rule("DES003", SEVERITY_ERROR,
              "CAS bus width disagrees with the enclosing bus")
SCN001 = rule("SCN001", SEVERITY_ERROR,
              "scenario victim core does not exist")
SCN002 = rule("SCN002", SEVERITY_ERROR,
              "scenario wire outside the bus")
SCN003 = rule("SCN003", SEVERITY_ERROR,
              "scenario boundary cell outside the wrapper")
SCN004 = rule("SCN004", SEVERITY_ERROR,
              "transport defect forced onto the compiled kernel backend")

#: Defect kinds the compiled kernel cannot execute (they corrupt the
#: TAM transport itself; see :func:`repro.sim.kernel.kernel_supports`).
TRANSPORT_KINDS = (KIND_OPEN_WIRE, KIND_BRIDGE, KIND_DEAD_CELL)


def _check_layout(node, report: VerifyReport, location: str) -> None:
    """DES002: wrapper chain layout must tile the boundary exactly."""
    wrapper = node.wrapper
    try:
        layout = wrapper.chain_layout()
    except Exception as exc:  # pragma: no cover - defensive
        report.add(
            DES002, location,
            f"chain layout unavailable: {exc}",
        )
        return
    num_in = len(wrapper.boundary.input_cells)
    num_out = len(wrapper.boundary.output_cells)
    in_indices = [index for in_pi, _ in layout for index in in_pi]
    out_indices = [index for _, out_po in layout for index in out_po]
    if sorted(in_indices) != list(range(num_in)):
        report.add(
            DES002, location,
            f"input-cell indices {sorted(in_indices)} do not tile the "
            f"{num_in} input cells",
        )
    if sorted(out_indices) != list(range(num_out)):
        report.add(
            DES002, location,
            f"output-cell indices {sorted(out_indices)} do not tile "
            f"the {num_out} output cells",
        )


def verify_system(
    system,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "",
) -> VerifyReport:
    """Check a built :class:`~repro.sim.system.CasBusSystem`.

    Recurses into hierarchical cores (each inner system has its own
    bus width).  Gate-level CAS instances expose the same ``n``/``p``
    surface as the behavioural model, so both are checked uniformly;
    attributes a custom CAS stand-in lacks are skipped rather than
    crashed on.
    """
    from repro.sim.nodes import HierNode

    if report is None:
        report = VerifyReport()
    report.checked += 1
    loc = location or f"system[{system.soc.name}]"
    for node in system.nodes:
        n_loc = f"{loc}/{node.path}"
        cas_n = getattr(node.cas, "n", None)
        if cas_n is not None and cas_n != system.n:
            report.add(
                DES003, n_loc,
                f"CAS switches an N={cas_n} bus inside an "
                f"N={system.n} system",
            )
        cas_p = getattr(node.cas, "p", None)
        if cas_p is not None and cas_p != node.spec.p:
            report.add(
                DES001, n_loc,
                f"CAS switches P={cas_p} terminals but the core has "
                f"P={node.spec.p}",
            )
        if isinstance(node, HierNode):
            if node.inner.n != node.spec.p:
                report.add(
                    DES001, n_loc,
                    f"inner bus is N={node.inner.n} wide but the core "
                    f"declares P={node.spec.p}",
                )
            verify_system(node.inner, report=report, location=n_loc)
            continue
        if node.wrapper is not None:
            _check_layout(node, report, n_loc)
    return report


def verify_scenario(
    scenario: DefectScenario,
    soc: SocSpec,
    *,
    backend: str = "auto",
    report: Optional[VerifyReport] = None,
    location: str = "",
) -> VerifyReport:
    """Check a :class:`DefectScenario` against the SoC it targets."""
    if report is None:
        report = VerifyReport()
    report.checked += 1
    loc = location or f"scenario[{scenario.describe()}]"
    spec = None
    if scenario.core is not None:
        try:
            spec = spec_at(soc, scenario.core)
        except ConfigurationError as exc:
            report.add(SCN001, loc, str(exc))
    if (spec is not None and scenario.kind == KIND_STUCK_AT
            and spec.method == TestMethod.HIERARCHICAL):
        report.add(
            SCN001, loc,
            f"{scenario.core!r} is hierarchical and has no flat logic "
            f"to fault",
            hint="address one of its inner cores instead",
        )
    if scenario.kind == KIND_OPEN_WIRE:
        assert scenario.wire is not None
        if not 0 <= scenario.wire < soc.bus_width:
            report.add(
                SCN002, loc,
                f"wire {scenario.wire} outside the "
                f"{soc.bus_width}-wire bus",
            )
    if scenario.kind == KIND_BRIDGE:
        assert scenario.wires is not None
        for wire in scenario.wires:
            if not 0 <= wire < soc.bus_width:
                report.add(
                    SCN002, loc,
                    f"wire {wire} outside the {soc.bus_width}-wire bus",
                )
    if scenario.kind == KIND_DEAD_CELL and spec is not None:
        if spec.method == TestMethod.HIERARCHICAL:
            report.add(
                SCN003, loc,
                f"{scenario.core!r} is hierarchical and has no "
                f"wrapper boundary",
            )
        else:
            cells = spec.num_pis + spec.num_pos
            assert scenario.cell is not None
            if not 0 <= scenario.cell < cells:
                report.add(
                    SCN003, loc,
                    f"boundary cell {scenario.cell} outside the "
                    f"wrapper's {cells} cells",
                )
    if backend == "kernel" and scenario.kind in TRANSPORT_KINDS:
        report.add(
            SCN004, loc,
            f"{scenario.kind} defects corrupt the TAM transport; the "
            f"compiled kernel cannot execute them",
            hint='use backend="auto" or "legacy"',
        )
    return report
