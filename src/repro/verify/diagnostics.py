"""Diagnostic framework for the static verifier.

Every check in :mod:`repro.verify` reports through the same three
objects:

* :class:`Rule` -- a registered invariant with a stable id (``SCH001``,
  ``PRG002``, ...), a default severity and a one-line summary.  The
  module-level :data:`RULES` registry is the authoritative catalogue;
  the test suite asserts every registered rule has a mutation test.
* :class:`Diagnostic` -- one violation: rule id, severity, a
  slash-separated location path into the artifact, a message and an
  optional fix hint.
* :class:`VerifyReport` -- an accumulating collection of diagnostics
  with table formatting and a :meth:`VerifyReport.raise_if_failed`
  escape hatch that turns error diagnostics into a
  :class:`~repro.errors.VerificationError` at the fail-fast
  boundaries.

Checks never raise on a violation themselves -- they *report*, so one
pass over an artifact surfaces every problem at once (the CLI audit
use case), and the boundary hooks decide whether to escalate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VerificationError

#: Diagnostic severities, in increasing order of concern.
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)


@dataclass(frozen=True)
class Rule:
    """One registered verifier invariant."""

    rule_id: str
    severity: str
    summary: str


#: The rule catalogue: rule id -> :class:`Rule`.  Populated at import
#: time by the checker modules via :func:`rule`.
RULES: dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str) -> str:
    """Register an invariant and return its id (module-level usage)."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    if severity not in SEVERITIES:
        raise ValueError(f"{rule_id}: bad severity {severity!r}")
    RULES[rule_id] = Rule(rule_id=rule_id, severity=severity,
                          summary=summary)
    return rule_id


@dataclass(frozen=True)
class Diagnostic:
    """One reported invariant violation."""

    rule_id: str
    severity: str
    location: str
    message: str
    hint: str = ""

    def to_dict(self) -> dict:
        """JSON-ready mapping (CLI ``--json`` output)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data) -> "Diagnostic":
        """Rebuild a diagnostic serialized by :meth:`to_dict`."""
        return cls(
            rule_id=data["rule"],
            severity=data["severity"],
            location=data["location"],
            message=data["message"],
            hint=data.get("hint", ""),
        )

    def render(self) -> str:
        text = (f"{self.rule_id} [{self.severity}] {self.location}: "
                f"{self.message}")
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


@dataclass
class VerifyReport:
    """Accumulated diagnostics from one or more verification passes."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Artifacts inspected (for the CLI summary line).
    checked: int = 0

    def add(self, rule_id: str, location: str, message: str,
            hint: str = "") -> None:
        """Report a violation of a registered rule."""
        registered = RULES.get(rule_id)
        if registered is None:
            raise ValueError(f"unregistered rule id {rule_id!r}")
        self.diagnostics.append(Diagnostic(
            rule_id=rule_id,
            severity=registered.severity,
            location=location,
            message=message,
            hint=hint,
        ))

    def extend(self, other: "VerifyReport") -> "VerifyReport":
        self.diagnostics.extend(other.diagnostics)
        self.checked += other.checked
        return self

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """No error diagnostics (warnings do not fail a report)."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self.diagnostics}

    def summary(self) -> str:
        return (f"{self.checked} artifact(s) checked: "
                f"{len(self.errors)} error(s), "
                f"{len(self.warnings)} warning(s)")

    def table(self) -> str:
        """Render the diagnostics as an aligned text table."""
        from repro.analysis.tables import format_table

        rows = [
            [d.rule_id, d.severity, d.location, d.message]
            for d in self.diagnostics
        ]
        return format_table(
            ["rule", "severity", "location", "message"], rows,
            title="verification diagnostics",
        )

    def raise_if_failed(self, context: str = "") -> "VerifyReport":
        """Raise :class:`~repro.errors.VerificationError` on errors."""
        if self.ok:
            return self
        prefix = f"{context}: " if context else ""
        lines = [d.render() for d in self.errors]
        raise VerificationError(
            prefix + f"{len(lines)} invariant violation(s)\n  "
            + "\n  ".join(lines)
        )
