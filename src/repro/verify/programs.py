"""Static checks on compiled kernel programs and configuration loads.

The compiled kernel (:mod:`repro.sim.kernel`) lowers a session into
bit-packed per-core programs; the configuration planner
(:mod:`repro.sim.config`) computes register target codes.  These checks
prove the packed data is well formed *before* anything executes:

Rules::

    PRG001  packed stimulus/expected/care words overflow the chain
    PRG002  chain geometry does not partition the core's cells
    PRG003  program window/cycle accounting inconsistent
    PRG004  configuration load references an unknown register
    PRG005  configuration load carries an invalid instruction code
    PRG006  batch golden responses disagree with the scalar program
    PRG007  batch program shape/mask/column accounting inconsistent
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.soc.core import CoreSpec
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    VerifyReport,
    rule,
)

PRG001 = rule("PRG001", SEVERITY_ERROR,
              "packed scan words overflow the declared chain width")
PRG002 = rule("PRG002", SEVERITY_ERROR,
              "chain geometry does not partition the core's cells")
PRG003 = rule("PRG003", SEVERITY_ERROR,
              "program window/cycle accounting inconsistent")
PRG004 = rule("PRG004", SEVERITY_ERROR,
              "configuration load references an unknown register")
PRG005 = rule("PRG005", SEVERITY_ERROR,
              "configuration load carries an invalid instruction code")
PRG006 = rule("PRG006", SEVERITY_ERROR,
              "batch golden responses disagree with the scalar program")
PRG007 = rule("PRG007", SEVERITY_ERROR,
              "batch program shape/mask/column accounting inconsistent")


def _check_partition(
    report: VerifyReport,
    location: str,
    what: str,
    pieces: "list[tuple[int, ...]]",
    universe: int,
) -> None:
    """PRG002 helper: ``pieces`` must tile ``range(universe)`` exactly."""
    flat: list[int] = [index for piece in pieces for index in piece]
    expected = list(range(universe))
    if sorted(flat) != expected:
        missing = sorted(set(expected) - set(flat))
        extra = sorted(set(flat) - set(expected))
        duplicated = sorted(
            {index for index in flat if flat.count(index) > 1}
        )
        parts = []
        if missing:
            parts.append(f"missing {missing}")
        if extra:
            parts.append(f"out of range {extra}")
        if duplicated:
            parts.append(f"duplicated {duplicated}")
        report.add(
            PRG002, location,
            f"{what} indices do not partition range({universe}): "
            + "; ".join(parts),
        )


def verify_scan_program(
    program,
    spec: CoreSpec,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "",
) -> VerifyReport:
    """Check one compiled :class:`~repro.sim.kernel._ScanProgram`."""
    if report is None:
        report = VerifyReport()
    report.checked += 1
    loc = location or f"program[{spec.name}]"
    geometries = program.geometries
    _check_partition(
        report, loc, "flip-flop",
        [geo.ff_ids for geo in geometries], spec.num_ffs,
    )
    _check_partition(
        report, loc, "input-cell",
        [geo.in_pi for geo in geometries], spec.num_pis,
    )
    _check_partition(
        report, loc, "output-cell",
        [geo.out_po for geo in geometries], spec.num_pos,
    )
    lengths = tuple(geo.length for geo in geometries)
    if program.lengths != lengths:
        report.add(
            PRG003, loc,
            f"declared chain lengths {program.lengths} differ from the "
            f"geometry's {lengths}",
        )
    depth = max(lengths, default=0)
    if program.depth != depth:
        report.add(
            PRG003, loc,
            f"declared depth {program.depth} differs from the longest "
            f"chain ({depth})",
        )
    patterns = len(program.test_set.patterns)
    if program.num_patterns != patterns:
        report.add(
            PRG003, loc,
            f"declared {program.num_patterns} patterns but the test "
            f"set holds {patterns}",
        )
    windows = (program.depth + 1) * program.num_patterns + program.depth
    if program.total_cycles != windows:
        report.add(
            PRG003, loc,
            f"total_cycles {program.total_cycles} != "
            f"(depth+1)*patterns+depth = {windows}",
            hint="every pattern costs one full shift window plus a "
                 "capture; the response flushes in one more window",
        )
    for r_index, response in enumerate(program.want_care):
        for c_index, (want, care) in enumerate(response):
            length = lengths[c_index] if c_index < len(lengths) else 0
            w_loc = f"{loc}/response[{r_index}]/chain[{c_index}]"
            if want >> length or care >> length:
                report.add(
                    PRG001, w_loc,
                    f"packed word wider than the {length}-bit chain "
                    f"(want={want:#x}, care={care:#x})",
                )
            if want & ~care:
                report.add(
                    PRG001, w_loc,
                    f"expected bits set outside the care mask "
                    f"(want={want:#x}, care={care:#x})",
                    hint="don't-care positions must expect nothing",
                )
    return report


def verify_batch_program(
    program,
    spec: CoreSpec,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "",
) -> VerifyReport:
    """Check one lowered :class:`~repro.sim.batch.BatchScanProgram`.

    PRG007 proves the array shapes, per-word care masks and output
    scan coordinates are internally consistent; PRG006 proves the
    packed golden responses agree bit-for-bit with the scalar
    program's want/care words at every output position.  Works on
    plain Python ints (``tolist``), so this module still imports
    without numpy -- a batch program can only exist where
    :mod:`repro.sim.batch` already loaded it.
    """
    if report is None:
        report = VerifyReport()
    report.checked += 1
    loc = location or f"batch[{spec.name}]"
    scalar = program.scalar
    lengths = scalar.lengths
    word_width = 64
    words = (program.num_patterns + word_width - 1) // word_width
    if program.words != words:
        report.add(
            PRG007, loc,
            f"declared {program.words} words for {program.num_patterns} "
            f"patterns (expected {words})",
        )
    if program.num_patterns != scalar.num_patterns:
        report.add(
            PRG007, loc,
            f"batch holds {program.num_patterns} patterns but the "
            f"scalar program {scalar.num_patterns}",
        )
    masks = [int(word) for word in program.masks.tolist()]
    full = (1 << word_width) - 1
    for index, mask in enumerate(masks):
        used = min(
            word_width,
            program.num_patterns - index * word_width,
        )
        expected = ((1 << used) - 1) if used < word_width else full
        if mask != expected:
            report.add(
                PRG007, f"{loc}/word[{index}]",
                f"care mask {mask:#x} does not cover the {used} "
                f"pattern bits of this word",
            )
    if program.inputs.shape != (program.cloud.num_inputs, len(masks)):
        report.add(
            PRG007, loc,
            f"input array shaped {program.inputs.shape}, expected "
            f"({program.cloud.num_inputs}, {len(masks)})",
        )
    outputs = len(program.cloud.outputs)
    if program.golden.shape != (outputs, len(masks)):
        report.add(
            PRG007, loc,
            f"golden array shaped {program.golden.shape}, expected "
            f"({outputs}, {len(masks)})",
        )
    if len(program.out_chain) != outputs or len(program.out_offset) != outputs:
        report.add(
            PRG007, loc,
            f"{len(program.out_chain)} chain / {len(program.out_offset)} "
            f"offset coordinates for {outputs} outputs",
        )
        return report  # coordinates unusable: skip the golden check
    for index, (chain, offset) in enumerate(
            zip(program.out_chain, program.out_offset)):
        if not 0 <= chain < len(lengths) or not 0 <= offset < (
                lengths[chain] if 0 <= chain < len(lengths) else 0):
            report.add(
                PRG007, f"{loc}/output[{index}]",
                f"scan coordinate (chain={chain}, offset={offset}) "
                f"outside the geometry",
            )
            return report
    golden = [
        [int(word) for word in row] for row in program.golden.tolist()
    ]
    for output in range(outputs):
        chain = program.out_chain[output]
        offset = program.out_offset[output]
        row = golden[output]
        for pattern in range(program.num_patterns):
            want, care = scalar.want_care[pattern][chain]
            bit = (row[pattern // word_width]
                   >> (pattern % word_width)) & 1
            if not (care >> offset) & 1:
                report.add(
                    PRG006,
                    f"{loc}/response[{pattern}]/output[{output}]",
                    f"scalar program does not care about chain {chain} "
                    f"offset {offset}, but the batch captures it",
                )
            elif (want >> offset) & 1 != bit:
                report.add(
                    PRG006,
                    f"{loc}/response[{pattern}]/output[{output}]",
                    f"golden bit {bit} contradicts the scalar expected "
                    f"bit at chain {chain} offset {offset}",
                )
    return report


def verify_configuration_targets(
    system,
    cas_targets: Mapping[str, int],
    *,
    report: Optional[VerifyReport] = None,
    location: str = "configuration",
) -> VerifyReport:
    """Check CAS register loads against the live system's registers."""
    if report is None:
        report = VerifyReport()
    report.checked += 1
    nodes = {f"{node.path}.cas": node for node in system.walk()}
    for register in sorted(set(cas_targets) - set(nodes)):
        report.add(
            PRG004, f"{location}/{register}",
            "target register does not exist in the system",
        )
    for register in sorted(set(nodes) - set(cas_targets)):
        report.add(
            PRG004, f"{location}/{register}",
            "register has no target code (every CAS is re-shifted)",
            hint="configuration passes thread the whole chain",
        )
    for register, code in sorted(cas_targets.items()):
        node = nodes.get(register)
        if node is None:
            continue
        iset = getattr(node.cas, "iset", None)
        if iset is None:
            continue  # gate-level CAS: codes validated by the netlist
        if not iset.is_valid_code(code):
            report.add(
                PRG005, f"{location}/{register}",
                f"code {code} is not a valid instruction "
                f"(k={iset.k} bits)",
            )
    return report


def verify_session_programs(
    system,
    session,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "session",
) -> VerifyReport:
    """Statically check everything one session would load and run.

    Computes the session's configuration targets (propagating the
    planner's own :class:`~repro.errors.ConfigurationError` untouched,
    so callers see the same failure they would at execution time) and
    verifies them plus each scan terminal's compiled program.
    """
    from repro.sim.config import configuration_targets
    from repro.sim.kernel import _scan_program
    from repro.sim.nodes import ScanNode

    if report is None:
        report = VerifyReport()
    cas_targets, _ = configuration_targets(system, session)
    verify_configuration_targets(
        system, cas_targets, report=report, location=location,
    )
    for assignment in session.assignments:
        node = system.node_at(assignment.path)
        if isinstance(node, ScanNode) and node.wrapper is not None:
            program = _scan_program(node.spec, node.wrapper)
            verify_scan_program(
                program, node.spec, report=report,
                location=f"{location}/{assignment.name}",
            )
    return report
