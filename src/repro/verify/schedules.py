"""Static checks on schedule IR against the memoised cost model.

Every check re-derives the quantity a schedule *claims* (entry cycles,
session wire usage, configuration totals) from the one
:class:`~repro.schedule.model.CostModel` and reports a diagnostic when
the artifact disagrees -- without simulating anything.

Rules::

    SCH001  wire budget exceeded (or schedule/problem width mismatch)
    SCH002  core scheduled twice inside one concurrent group
    SCH003  scheduled core unknown to (or inconsistent with) the problem
    SCH004  problem core with work never scheduled
    SCH005  entry allocated fewer than one wire
    SCH006  entry cycle claim not re-derivable from the cost model
    SCH007  configuration total not re-derivable from the cost model
    PRE001  preemptive segment breaks the wire budget
    PRE002  core allocated twice inside one segment
    PRE003  preemptive configuration total inconsistent with boundaries
    STA001  static plan structure broken (groups vs wires vs budget)
    STA002  static groups do not partition the problem cores
    OUT001  strategy outcome totals not re-derivable from its detail
"""

from __future__ import annotations

from typing import Optional

from repro.soc.core import CoreTestParams
from repro.schedule.model import CostModel, Schedule, TamProblem
from repro.schedule.optimize import OptimizeOutcome
from repro.schedule.preemptive import PreemptiveSchedule
from repro.schedule.reconfig import ReconfigComparison, StaticPlan
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    VerifyReport,
    rule,
)

SCH001 = rule("SCH001", SEVERITY_ERROR,
              "session wire usage exceeds the bus budget")
SCH002 = rule("SCH002", SEVERITY_ERROR,
              "core scheduled twice inside one concurrent group")
SCH003 = rule("SCH003", SEVERITY_ERROR,
              "scheduled core unknown to the problem")
SCH004 = rule("SCH004", SEVERITY_ERROR,
              "problem core with work never scheduled")
SCH005 = rule("SCH005", SEVERITY_ERROR,
              "entry allocated fewer than one wire")
SCH006 = rule("SCH006", SEVERITY_ERROR,
              "entry cycle claim not re-derivable from the cost model")
SCH007 = rule("SCH007", SEVERITY_ERROR,
              "configuration total not re-derivable from the cost model")
PRE001 = rule("PRE001", SEVERITY_ERROR,
              "preemptive segment breaks the wire budget")
PRE002 = rule("PRE002", SEVERITY_ERROR,
              "core allocated twice inside one segment")
PRE003 = rule("PRE003", SEVERITY_ERROR,
              "preemptive configuration total inconsistent with its "
              "boundary count")
STA001 = rule("STA001", SEVERITY_ERROR,
              "static plan structure broken")
STA002 = rule("STA002", SEVERITY_ERROR,
              "static groups do not partition the problem cores")
OUT001 = rule("OUT001", SEVERITY_ERROR,
              "strategy outcome totals not re-derivable from its detail")


def _core_index(problem: TamProblem) -> dict[str, CoreTestParams]:
    return {core.name: core for core in problem.cores}


def _has_work(model: CostModel, core: CoreTestParams) -> bool:
    return model.core_cycles(core, 1) > 0


def _check_coverage(
    scheduled: set[str],
    model: CostModel,
    report: VerifyReport,
    location: str,
) -> None:
    """SCH004: every core with actual work must appear somewhere.

    Zero-work cores (no patterns, no fixed duration) may legally be
    omitted -- the preemptive scheduler never emits segments for them.
    """
    for core in model.problem.cores:
        if core.name in scheduled:
            continue
        if not _has_work(model, core):
            continue
        report.add(
            SCH004, f"{location}",
            f"core {core.name!r} "
            f"({model.core_cycles(core, 1)} cycles of work) "
            f"is never scheduled",
            hint="every core with work must appear in some session",
        )


def verify_schedule(
    schedule: Schedule,
    problem: TamProblem,
    *,
    charge_config: Optional[bool] = None,
    report: Optional[VerifyReport] = None,
    location: str = "schedule",
) -> VerifyReport:
    """Check a session-based :class:`Schedule` against ``problem``.

    ``charge_config`` declares how the configuration total was
    charged: ``True`` (must match the model), ``False`` (must be 0) or
    ``None`` (either is acceptable -- the caller does not know).
    """
    if report is None:
        report = VerifyReport()
    report.checked += 1
    model = CostModel(problem)
    index = _core_index(problem)
    if schedule.bus_width != problem.bus_width:
        report.add(
            SCH001, location,
            f"schedule is for N={schedule.bus_width} but the problem "
            f"has N={problem.bus_width}",
        )
    scheduled: set[str] = set()
    for s_index, session in enumerate(schedule.sessions):
        s_loc = f"{location}/session[{s_index}]"
        seen: set[str] = set()
        wires_used = 0
        for e_index, entry in enumerate(session.entries):
            e_loc = f"{s_loc}/entry[{e_index}]"
            params = entry.params
            name = params.name
            scheduled.add(name)
            if name in seen:
                report.add(
                    SCH002, e_loc,
                    f"core {name!r} appears twice in one session",
                )
            seen.add(name)
            known = index.get(name)
            if known is None:
                report.add(
                    SCH003, e_loc,
                    f"core {name!r} is not part of the problem",
                )
            elif known != params:
                report.add(
                    SCH003, e_loc,
                    f"core {name!r} parameters differ from the "
                    f"problem's ({params} != {known})",
                    hint="schedules must reference problem cores "
                         "verbatim",
                )
            if entry.wires < 1:
                report.add(
                    SCH005, e_loc,
                    f"core {name!r} allocated {entry.wires} wires",
                    hint="every scheduled core needs at least one wire",
                )
                continue
            wires_used += entry.wires
            claimed = entry.cycles
            derived = model.core_cycles(params, entry.wires)
            if claimed != derived:
                report.add(
                    SCH006, e_loc,
                    f"core {name!r} claims {claimed} cycles on "
                    f"{entry.wires} wires; the cost model derives "
                    f"{derived}",
                )
        if wires_used > problem.bus_width:
            report.add(
                SCH001, s_loc,
                f"session uses {wires_used} wires on an "
                f"N={problem.bus_width} bus",
            )
    _check_coverage(scheduled, model, report, location)
    derived_config = model.schedule_config_cycles(schedule.sessions)
    total = schedule.config_cycles_total
    valid: tuple[int, ...]
    if charge_config is True:
        valid = (derived_config,)
    elif charge_config is False:
        valid = (0,)
    else:
        valid = (0, derived_config)
    if total not in valid:
        report.add(
            SCH007, location,
            f"configuration total {total} is not re-derivable: the "
            f"cost model charges {derived_config} (or 0 uncharged)",
        )
    return report


def verify_preemptive(
    schedule: PreemptiveSchedule,
    problem: TamProblem,
    *,
    charge_config: Optional[bool] = None,
    report: Optional[VerifyReport] = None,
    location: str = "preemptive",
) -> VerifyReport:
    """Check a :class:`PreemptiveSchedule` against ``problem``."""
    if report is None:
        report = VerifyReport()
    report.checked += 1
    model = CostModel(problem)
    index = _core_index(problem)
    if schedule.bus_width != problem.bus_width:
        report.add(
            SCH001, location,
            f"schedule is for N={schedule.bus_width} but the problem "
            f"has N={problem.bus_width}",
        )
    scheduled: set[str] = set()
    for s_index, segment in enumerate(schedule.segments):
        s_loc = f"{location}/segment[{s_index}]"
        seen: set[str] = set()
        wires_used = 0
        if segment.duration < 0:
            report.add(
                PRE001, s_loc,
                f"negative segment duration {segment.duration}",
            )
        for name, wires in segment.allocations:
            scheduled.add(name)
            if name in seen:
                report.add(
                    PRE002, s_loc,
                    f"core {name!r} allocated twice in one segment",
                )
            seen.add(name)
            if name not in index:
                report.add(
                    SCH003, s_loc,
                    f"core {name!r} is not part of the problem",
                )
            if wires < 1:
                report.add(
                    PRE001, s_loc,
                    f"core {name!r} allocated {wires} wires",
                )
                continue
            wires_used += wires
        if wires_used > problem.bus_width:
            report.add(
                PRE001, s_loc,
                f"segment uses {wires_used} wires on an "
                f"N={problem.bus_width} bus",
            )
    _check_coverage(scheduled, model, report, location)
    per_boundary = model.boundary_config_cycles()
    derived_config = len(schedule.segments) * per_boundary
    total = schedule.config_cycles_total
    if charge_config is True:
        valid = (derived_config,)
    elif charge_config is False:
        valid = (0,)
    else:
        valid = (0, derived_config)
    if total not in valid:
        report.add(
            PRE003, location,
            f"configuration total {total} does not match "
            f"{len(schedule.segments)} boundaries at {per_boundary} "
            f"cycles each ({derived_config}, or 0 uncharged)",
        )
    return report


def verify_static_plan(
    plan: StaticPlan,
    problem: TamProblem,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "static-plan",
) -> VerifyReport:
    """Check a :class:`StaticPlan` wire partition against ``problem``."""
    if report is None:
        report = VerifyReport()
    report.checked += 1
    if len(plan.groups) != len(plan.wires_per_group):
        report.add(
            STA001, location,
            f"{len(plan.groups)} groups but "
            f"{len(plan.wires_per_group)} wire counts",
        )
    bad_wires = [w for w in plan.wires_per_group if w < 1]
    if bad_wires:
        report.add(
            STA001, location,
            f"groups with fewer than one wire: {bad_wires}",
        )
    total_wires = sum(plan.wires_per_group)
    if total_wires > problem.bus_width:
        report.add(
            STA001, location,
            f"partition uses {total_wires} wires on an "
            f"N={problem.bus_width} bus",
        )
    planned = [core.name for group in plan.groups for core in group]
    expected = sorted(core.name for core in problem.cores)
    if sorted(planned) != expected:
        report.add(
            STA002, location,
            f"groups hold {sorted(planned)} but the problem has "
            f"{expected}",
            hint="a static partition assigns every core exactly once",
        )
    return report


def _derive_totals(
    detail: object, problem: TamProblem, report: VerifyReport,
    location: str,
) -> "Optional[tuple[int, int]]":
    """Verify ``detail`` structurally and re-derive its totals.

    Returns ``(test_cycles, config_cycles)`` as the strategy adapter
    would have reported them, or ``None`` for unknown detail types.
    """
    if isinstance(detail, Schedule):
        verify_schedule(detail, problem, report=report,
                        location=location)
        return detail.test_cycles, detail.config_cycles_total
    if isinstance(detail, PreemptiveSchedule):
        verify_preemptive(detail, problem, report=report,
                          location=location)
        return detail.test_cycles, detail.config_cycles_total
    if isinstance(detail, StaticPlan):
        from repro.schedule.scheduler import session_config_cost

        verify_static_plan(detail, problem, report=report,
                           location=location)
        config = 0
        if problem.cores:
            config = session_config_cost(
                problem.cores, problem.bus_width, problem.cores,
                problem.cas_policy,
            )
        return detail.total_cycles, config
    if isinstance(detail, ReconfigComparison):
        verify_schedule(detail.reconfigured, problem,
                        charge_config=True, report=report,
                        location=f"{location}/reconfigured")
        verify_preemptive(detail.preemptive, problem,
                          charge_config=True, report=report,
                          location=f"{location}/preemptive")
        verify_static_plan(detail.static, problem, report=report,
                           location=f"{location}/static")
        best = min(
            (detail.reconfigured, detail.preemptive),
            key=lambda schedule: schedule.total_cycles,
        )
        return best.test_cycles, best.config_cycles_total
    if isinstance(detail, OptimizeOutcome):
        verify_schedule(detail.schedule, detail.problem, report=report,
                        location=f"{location}/best")
        for width, schedule in sorted(detail.schedules.items()):
            verify_schedule(
                schedule, detail.problem.with_width(width),
                report=report, location=f"{location}/width[{width}]",
            )
        return detail.test_cycles, detail.config_cycles
    return None


def verify_outcome(
    outcome,
    problem: TamProblem,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "",
) -> VerifyReport:
    """Check a :class:`~repro.api.schedulers.ScheduleOutcome`.

    Verifies the strategy-specific ``detail`` structurally, then
    re-derives the outcome's reported totals from it (OUT001).  The
    adapter zeroes ``config_cycles`` when configuration was not
    charged, so 0 is always an acceptable configuration total.
    """
    if report is None:
        report = VerifyReport()
    loc = location or f"outcome[{outcome.strategy}]"
    if outcome.bus_width != problem.bus_width:
        report.add(
            OUT001, loc,
            f"outcome is for N={outcome.bus_width} but the problem "
            f"has N={problem.bus_width}",
        )
    derived = _derive_totals(outcome.detail, problem, report, loc)
    if derived is None:
        return report
    test, config = derived
    if outcome.test_cycles != test:
        report.add(
            OUT001, loc,
            f"outcome claims {outcome.test_cycles} test cycles; its "
            f"detail derives {test}",
        )
    if outcome.config_cycles not in (0, config):
        report.add(
            OUT001, loc,
            f"outcome claims {outcome.config_cycles} config cycles; "
            f"its detail derives {config} (or 0 uncharged)",
        )
    return report
