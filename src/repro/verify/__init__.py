"""Static verification of repro artifacts (no simulation required).

The verifier proves pipeline invariants *before* execution: schedules
against the cost model, compiled kernel programs against their chain
geometry, wired TAM systems against the figure-1 bijections, defect
scenarios against the SoC they target, and campaign-store records
against their own serialization contract.

Entry points:

* :func:`verify_schedule` / :func:`verify_preemptive` /
  :func:`verify_static_plan` / :func:`verify_outcome` -- schedule IR;
* :func:`verify_scan_program` / :func:`verify_batch_program` /
  :func:`verify_configuration_targets` /
  :func:`verify_session_programs` -- compiled programs;
* :func:`verify_system` / :func:`verify_scenario` -- TAM designs;
* :func:`verify_record` / :func:`verify_store` -- campaign stores.

All share the :class:`Diagnostic` / :class:`VerifyReport` framework
and the :data:`RULES` registry in
:mod:`repro.verify.diagnostics`.  Fail-fast boundaries
(:class:`~repro.sim.session.SessionExecutor` pre-dispatch, campaign
record append, ``Experiment.run``) call
:meth:`VerifyReport.raise_if_failed`, controlled by the
``RunConfig.verify`` flag (default on, identity-neutral for config
hashes); ``python -m repro verify`` audits stores in bulk.
"""

from repro.verify.diagnostics import (
    RULES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    Rule,
    VerifyReport,
)
from repro.verify.schedules import (
    verify_outcome,
    verify_preemptive,
    verify_schedule,
    verify_static_plan,
)
from repro.verify.programs import (
    verify_batch_program,
    verify_configuration_targets,
    verify_scan_program,
    verify_session_programs,
)
from repro.verify.designs import (
    TRANSPORT_KINDS,
    verify_scenario,
    verify_system,
)
from repro.verify.records import (
    verify_record,
    verify_store,
)

__all__ = [
    "RULES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Diagnostic",
    "Rule",
    "TRANSPORT_KINDS",
    "VerifyReport",
    "verify_batch_program",
    "verify_configuration_targets",
    "verify_outcome",
    "verify_preemptive",
    "verify_record",
    "verify_scan_program",
    "verify_scenario",
    "verify_schedule",
    "verify_session_programs",
    "verify_static_plan",
    "verify_store",
    "verify_system",
]
