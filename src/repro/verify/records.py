"""Static checks on campaign-store records and whole stores.

One bad record fanned out across a worker fleet poisons every report
built on the store, so the record checks run both at append time (the
:func:`repro.api.runner.run_many` boundary) and on demand over
existing stores (``python -m repro verify``).

Rules::

    REC001  record shape broken (missing keys, wrong types, bad schema)
    REC002  record hash is not a sha256 hex digest
    REC003  record payload does not reconstruct
    REC004  per-session cycles disagree with the result totals
    REC005  result source invariants broken
    REC006  record references an unknown architecture or scheduler
    REC007  store contains unparseable lines
    REC008  store holds no records (warning)
    REC009  maintained aggregates disagree with the stored records
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ReproError, StoreError
from repro.api.results import (
    SCHEMA_VERSION,
    SOURCE_MODEL,
    SOURCE_SIMULATION,
    RunConfig,
    RunResult,
)
from repro.campaign.hashing import is_config_hash
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    VerifyReport,
    rule,
)

REC001 = rule("REC001", SEVERITY_ERROR,
              "record shape broken")
REC002 = rule("REC002", SEVERITY_ERROR,
              "record hash is not a sha256 hex digest")
REC003 = rule("REC003", SEVERITY_ERROR,
              "record payload does not reconstruct")
REC004 = rule("REC004", SEVERITY_ERROR,
              "per-session cycles disagree with the result totals")
REC005 = rule("REC005", SEVERITY_ERROR,
              "result source invariants broken")
REC006 = rule("REC006", SEVERITY_ERROR,
              "record references an unknown architecture or scheduler")
REC007 = rule("REC007", SEVERITY_ERROR,
              "store contains unparseable lines")
REC008 = rule("REC008", SEVERITY_WARNING,
              "store holds no records")
REC009 = rule("REC009", SEVERITY_ERROR,
              "maintained aggregates disagree with the stored records")


def _check_run_result(
    record: Mapping, report: VerifyReport, location: str
) -> None:
    try:
        result = RunResult.from_dict(record["result"])
    except Exception as exc:
        report.add(
            REC003, location,
            f"result does not reconstruct as a RunResult: {exc!r}",
        )
        return
    if result.source not in (SOURCE_MODEL, SOURCE_SIMULATION):
        report.add(
            REC005, location,
            f"unknown result source {result.source!r}",
        )
    if result.source == SOURCE_MODEL:
        if result.passed is not None:
            report.add(
                REC005, location,
                f"model result claims passed={result.passed}; the "
                f"abstract model moves no bits",
            )
        if result.sessions:
            report.add(
                REC005, location,
                "model result carries per-session simulation detail",
            )
    if result.source == SOURCE_SIMULATION:
        if result.passed is None:
            report.add(
                REC005, location,
                "simulated result has no pass/fail verdict",
            )
        if result.sessions:
            test = sum(s.test_cycles for s in result.sessions)
            config = sum(s.config_cycles for s in result.sessions)
            if (test != result.test_cycles
                    or config != result.config_cycles):
                report.add(
                    REC004, location,
                    f"sessions sum to {test} test + {config} config "
                    f"cycles but the result claims "
                    f"{result.test_cycles} + {result.config_cycles}",
                )
    from repro.api.registry import ARCHITECTURES, SCHEDULERS

    try:
        ARCHITECTURES.resolve(result.architecture)
    except ReproError:
        report.add(
            REC006, location,
            f"unknown architecture {result.architecture!r}",
        )
    if result.scheduler:
        try:
            SCHEDULERS.resolve(result.scheduler)
        except ReproError:
            report.add(
                REC006, location,
                f"unknown scheduler {result.scheduler!r}",
            )


def _check_diagnosis_result(
    record: Mapping, report: VerifyReport, location: str
) -> None:
    from repro.diagnose.engine import DiagnosisResult
    from repro.diagnose.inject import DefectScenario

    try:
        DiagnosisResult.from_dict(record["result"])
    except Exception as exc:
        report.add(
            REC003, location,
            f"result does not reconstruct as a DiagnosisResult: "
            f"{exc!r}",
        )
    scenario = record.get("scenario")
    if scenario is not None:
        try:
            DefectScenario.from_dict(scenario)
        except Exception as exc:
            report.add(
                REC003, location,
                f"scenario does not reconstruct: {exc!r}",
            )


def verify_record(
    record: object,
    *,
    report: Optional[VerifyReport] = None,
    location: str = "record",
) -> VerifyReport:
    """Check one store record (run or diagnosis)."""
    from repro.diagnose.records import is_diagnosis_record

    if report is None:
        report = VerifyReport()
    report.checked += 1
    if not isinstance(record, Mapping):
        report.add(
            REC001, location,
            f"record is {type(record).__name__}, not a mapping",
        )
        return report
    schema = record.get("schema")
    if not isinstance(schema, int):
        report.add(
            REC001, location,
            f"schema is {schema!r}, not an integer",
        )
    elif schema > SCHEMA_VERSION:
        report.add(
            REC001, location,
            f"record schema {schema} is newer than supported schema "
            f"{SCHEMA_VERSION}",
        )
    for key in ("result", "config"):
        if not isinstance(record.get(key), Mapping):
            report.add(
                REC001, location,
                f"record has no {key!r} mapping",
            )
    if not is_config_hash(record.get("hash")):
        report.add(
            REC002, location,
            f"hash {record.get('hash')!r} is not a 64-digit sha256 "
            f"hex string",
        )
    if isinstance(record.get("config"), Mapping):
        try:
            RunConfig.from_dict(record["config"])
        except Exception as exc:
            report.add(
                REC003, location,
                f"config does not reconstruct: {exc!r}",
            )
    if not isinstance(record.get("result"), Mapping):
        return report
    if is_diagnosis_record(record):
        _check_diagnosis_result(record, report, location)
    else:
        _check_run_result(record, report, location)
    return report


def verify_store(
    store,
    *,
    report: Optional[VerifyReport] = None,
) -> VerifyReport:
    """Check every record of a campaign store (path or store object)."""
    from repro.campaign.store import as_store

    if report is None:
        report = VerifyReport()
    store = as_store(store)
    name = str(store.path)
    try:
        records = store.records()
    except StoreError as exc:
        report.checked += 1
        report.add(REC001, name, str(exc))
        return report
    if store.skipped_lines:
        report.add(
            REC007, name,
            f"{store.skipped_lines} unparseable line(s) skipped",
            hint="a writer died mid-append or the file is corrupt",
        )
    if not records:
        report.checked += 1
        report.add(REC008, name, "store holds no records")
        return report
    for index, record in enumerate(records):
        record_hash = record.get("hash", "")
        tag = record_hash[:10] if isinstance(record_hash, str) else ""
        verify_record(
            record, report=report,
            location=f"{name}[{index}:{tag}]",
        )
    _check_aggregates(store, report, name)
    return report


def _check_aggregates(store, report: VerifyReport, name: str) -> None:
    """REC009: incremental aggregates must equal a full rescan.

    Only backends that maintain aggregates transactionally (SQLite's
    ``aggregates`` table) expose ``stored_aggregate_counts``; scanning
    backends have nothing that could drift, so the rule is vacuous for
    them.
    """
    stored_counts = getattr(store, "stored_aggregate_counts", None)
    if stored_counts is None:
        return
    maintained = stored_counts()
    scanned = store.scan_aggregate_counts()
    if maintained == scanned:
        return
    drifted = sorted(
        set(maintained) | set(scanned),
        key=lambda key: tuple(part or "" for part in key),
    )
    details = [
        f"{key}: stored {maintained.get(key, 0)} != scanned "
        f"{scanned.get(key, 0)}"
        for key in drifted
        if maintained.get(key, 0) != scanned.get(key, 0)
    ]
    report.add(
        REC009, name,
        f"{len(details)} aggregate bucket(s) drifted: "
        + "; ".join(details[:3])
        + ("; ..." if len(details) > 3 else ""),
        hint="the aggregates table was modified outside append/merge; "
        "compact() rebuilds it from the records",
    )
