"""Paper-versus-measured reporting for the reproduction experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import format_table


@dataclass(frozen=True)
class ComparisonRow:
    """One quantity compared against the paper."""

    label: str
    paper: object
    measured: object

    @property
    def ratio(self) -> float | None:
        try:
            paper = float(self.paper)  # type: ignore[arg-type]
            measured = float(self.measured)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if paper == 0:
            return None
        return measured / paper

    @property
    def matches(self) -> bool:
        return self.paper == self.measured


def comparison_table(
    rows: Sequence[ComparisonRow],
    *,
    title: str = "paper vs measured",
) -> str:
    """Render paper-vs-measured rows with ratios where meaningful."""
    body = []
    for row in rows:
        ratio = row.ratio
        body.append(
            (
                row.label,
                row.paper,
                row.measured,
                f"{ratio:.2f}" if ratio is not None else
                ("=" if row.matches else "-"),
            )
        )
    return format_table(
        ("quantity", "paper", "measured", "ratio"), body, title=title
    )
