"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numbers are right-aligned, text left-aligned; floats keep their
    repr as supplied by the caller (format before passing for control).
    """
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    numeric = [
        all(_is_number(row[index]) for row in rows) if rows else False
        for index in range(len(headers))
    ]

    def fmt_row(values: Sequence[str]) -> str:
        parts = []
        for index, value in enumerate(values):
            if numeric[index]:
                parts.append(value.rjust(widths[index]))
            else:
                parts.append(value.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
