"""Parameter sweeps with tabulated results.

For experiment work (architectures x bus widths x schedulers) this
module is superseded by :func:`repro.api.runner.run_many` /
:func:`repro.api.runner.run_sweep`, which run on every core and return
structured :class:`~repro.api.results.RunResult` records
(:func:`repro.api.results.results_table` feeds them into
:func:`repro.analysis.tables.format_table`).  :func:`sweep` remains for
tabulating arbitrary callables over one parameter.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping


def sweep(
    parameter_values: Iterable[object],
    evaluate: Callable[[object], Mapping[str, object]],
    *,
    parameter_name: str = "parameter",
) -> tuple[list[str], list[list[object]]]:
    """Run ``evaluate`` over a parameter range.

    Returns ``(headers, rows)`` ready for
    :func:`repro.analysis.tables.format_table`; the metric keys of the
    first evaluation fix the column order.
    """
    headers: list[str] = [parameter_name]
    rows: list[list[object]] = []
    for value in parameter_values:
        metrics = evaluate(value)
        if len(headers) == 1:
            headers.extend(metrics.keys())
        row: list[object] = [value]
        row.extend(metrics.get(key, "") for key in headers[1:])
        rows.append(row)
    return headers, rows
