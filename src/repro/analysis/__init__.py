"""Reporting and sweep utilities shared by benchmarks and examples."""

from repro.analysis.tables import format_table
from repro.analysis.report import ComparisonRow, comparison_table
from repro.analysis.sweep import sweep

__all__ = ["format_table", "ComparisonRow", "comparison_table", "sweep"]
