"""Scan-test substrate: synthetic scannable cores, stuck-at faults,
parallel-pattern fault simulation and random-pattern ATPG.

The paper tests scannable cores through the CAS-BUS with ``P`` equal to
the number of integrated scan chains (figure 2a).  This package supplies
real cores to test: seeded random combinational clouds with scan
flip-flops partitioned into chains, a single-stuck-at fault model, a
64-way bit-parallel fault simulator, and an ATPG loop producing compact
test sets with known expected responses -- the data that actually
travels over the test bus in the system simulation.
"""

from repro.scan.core_model import CombCloud, CombOp, ScannableCore
from repro.scan.chain import ScanChain
from repro.scan.faults import Fault, all_stuck_at_faults
from repro.scan.fault_sim import FaultSimResult, run_fault_simulation
from repro.scan.atpg import ScanPattern, TestSet, generate_test_set
from repro.scan.podem import PodemAtpg, PodemResult, podem_pattern

__all__ = [
    "CombCloud",
    "CombOp",
    "ScannableCore",
    "ScanChain",
    "Fault",
    "all_stuck_at_faults",
    "FaultSimResult",
    "run_fault_simulation",
    "ScanPattern",
    "TestSet",
    "generate_test_set",
    "PodemAtpg",
    "PodemResult",
    "podem_pattern",
]
