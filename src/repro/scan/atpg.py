"""Random-pattern ATPG with fault dropping.

Generates seeded random scan patterns, fault-simulates them in batches,
keeps only patterns that detect new faults, and stops at a coverage
target or pattern budget.  The resulting :class:`TestSet` carries the
expected responses (captured flip-flop state and primary outputs), i.e.
exactly the bits the CAS-BUS must transport and compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.scan.core_model import ScannableCore
from repro.scan.fault_sim import (
    WORD_WIDTH,
    pack_patterns,
    run_fault_simulation,
)
from repro.scan.faults import Fault, core_fault_list


@dataclass(frozen=True)
class ScanPattern:
    """One scan test pattern.

    Attributes:
        pi: primary input values, index = PI number.
        chains: per-chain load values; ``chains[c][i]`` lands in chain
            ``c`` position ``i`` (position 0 = scan-in side).
    """

    pi: tuple[int, ...]
    chains: tuple[tuple[int, ...], ...]


@dataclass(frozen=True)
class PatternResponse:
    """Expected capture results for one pattern.

    Attributes:
        ff_values: post-capture flip-flop values (index = FF number).
        po_values: primary output values observed at capture.
    """

    ff_values: tuple[int, ...]
    po_values: tuple[int, ...]

    def chain_out(self, core: ScannableCore, chain_index: int) -> tuple[int, ...]:
        """Captured values of one chain, position 0 first."""
        return tuple(self.ff_values[ff] for ff in core.chains[chain_index])


@dataclass
class TestSet:
    """A complete scan test for one core."""

    core_name: str
    patterns: list[ScanPattern] = field(default_factory=list)
    responses: list[PatternResponse] = field(default_factory=list)
    fault_coverage: float = 0.0
    detected_faults: int = 0
    total_faults: int = 0
    #: Faults proven redundant by PODEM (no test exists).
    untestable_faults: int = 0
    #: Faults PODEM gave up on (backtrack budget exhausted).
    aborted_faults: int = 0

    def __len__(self) -> int:
        return len(self.patterns)

    @property
    def effective_coverage(self) -> float:
        """Coverage over *testable* faults (untestable ones excluded)."""
        testable = self.total_faults - self.untestable_faults
        if not testable:
            return 1.0
        return self.detected_faults / testable


def random_pattern(core: ScannableCore, rng: random.Random) -> ScanPattern:
    """One uniformly random pattern for a core."""
    pi = tuple(rng.randint(0, 1) for _ in range(core.num_pis))
    chains = tuple(
        tuple(rng.randint(0, 1) for _ in range(length))
        for length in core.chain_lengths
    )
    return ScanPattern(pi=pi, chains=chains)


def compute_responses(
    core: ScannableCore,
    patterns: Sequence[ScanPattern],
) -> list[PatternResponse]:
    """Fault-free expected responses, computed bit-parallel."""
    responses: list[PatternResponse] = []
    for batch, start in zip(
        pack_patterns(core, patterns), range(0, len(patterns), WORD_WIDTH)
    ):
        words = core.cloud.evaluate_words(batch.input_words, batch.mask)
        for offset in range(batch.count):
            bit = 1 << offset
            ff_values = tuple(
                1 if words[index] & bit else 0
                for index in range(core.num_ffs)
            )
            po_values = tuple(
                1 if words[core.num_ffs + index] & bit else 0
                for index in range(core.num_pos)
            )
            responses.append(
                PatternResponse(ff_values=ff_values, po_values=po_values)
            )
    return responses


def generate_test_set(
    core: ScannableCore,
    *,
    seed: int = 1,
    target_coverage: float = 0.95,
    max_patterns: int = 512,
    batch_size: int = WORD_WIDTH,
    deterministic_topup: bool = False,
    podem_backtrack_limit: int = 128,
) -> TestSet:
    """ATPG: random patterns with fault dropping, plus optional PODEM.

    Phase 1 generates seeded random patterns, keeping only those that
    detect new faults, until the coverage target, the pattern budget or
    random saturation.  With ``deterministic_topup``, phase 2 targets
    every remaining fault with PODEM (:mod:`repro.scan.podem`): each
    testable fault contributes a pattern (which is fault-simulated to
    drop collaterals), and redundant faults are *proven* untestable.
    """
    if not 0.0 < target_coverage <= 1.0:
        raise ConfigurationError(
            f"target coverage must be in (0, 1], got {target_coverage}"
        )
    rng = random.Random(seed)
    remaining: list[Fault] = core_fault_list(core)
    total = len(remaining)
    kept: list[ScanPattern] = []
    detected = 0
    while remaining and len(kept) < max_patterns:
        budget = min(batch_size, max_patterns - len(kept))
        batch = [random_pattern(core, rng) for _ in range(budget)]
        sim = run_fault_simulation(core, batch, remaining)
        if not sim.detected:
            # A full batch with zero new detections: random ATPG has
            # saturated (remaining faults are random-pattern-resistant).
            break
        useful_indices = sorted(set(sim.detecting_pattern.values()))
        kept.extend(batch[index] for index in useful_indices)
        detected += len(sim.detected)
        remaining = [f for f in remaining if f not in sim.detected]
        if total and detected / total >= target_coverage:
            break
    untestable = 0
    aborted = 0
    if deterministic_topup and remaining:
        from repro.scan.podem import TESTABLE, UNTESTABLE, podem_pattern

        queue = list(remaining)
        while queue and len(kept) < max_patterns:
            fault = queue.pop(0)
            pattern, verdict = podem_pattern(
                core, fault,
                fill_seed=seed ^ (fault.node * 2 + fault.stuck_value),
                backtrack_limit=podem_backtrack_limit,
            )
            if verdict == UNTESTABLE:
                untestable += 1
                remaining = [f for f in remaining if f != fault]
                continue
            if verdict != TESTABLE:
                aborted += 1
                continue
            assert pattern is not None
            sim = run_fault_simulation(core, [pattern], remaining)
            if fault not in sim.detected:
                # Random fill masked the target; count as aborted
                # rather than looping (rare).
                aborted += 1
                continue
            kept.append(pattern)
            detected += len(sim.detected)
            remaining = [f for f in remaining if f not in sim.detected]
            queue = [f for f in queue if f in set(remaining)]
    responses = compute_responses(core, kept)
    coverage = detected / total if total else 1.0
    return TestSet(
        core_name=core.name,
        patterns=kept,
        responses=responses,
        fault_coverage=coverage,
        detected_faults=detected,
        total_faults=total,
        untestable_faults=untestable,
        aborted_faults=aborted,
    )
