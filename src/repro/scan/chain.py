"""Stand-alone scan chain: an ordered shift register of named bits.

Used wherever a shiftable register that is *not* backed by a
:class:`~repro.scan.core_model.ScannableCore` is needed -- e.g. the
wrapper's serial concatenation of boundary cells and core chains, or
the wrapped system bus's boundary chain.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError


class ScanChain:
    """A plain shift register with position 0 at the scan-in side."""

    def __init__(self, length: int, name: str = "chain") -> None:
        if length < 0:
            raise SimulationError(f"{name}: negative length {length}")
        self.name = name
        self.bits = [0] * length

    def __len__(self) -> int:
        return len(self.bits)

    def shift(self, bit_in: int) -> int:
        """Shift one position towards scan-out; returns the bit out."""
        if bit_in not in (0, 1):
            raise SimulationError(
                f"{self.name}: scan input must be 0/1, got {bit_in!r}"
            )
        if not self.bits:
            return bit_in
        out_bit = self.bits[-1]
        self.bits = [bit_in] + self.bits[:-1]
        return out_bit

    def scan_out_bit(self) -> int:
        """Bit presented at scan-out before the next shift."""
        if not self.bits:
            raise SimulationError(f"{self.name}: empty chain has no output")
        return self.bits[-1]

    def load(self, values: Sequence[int]) -> None:
        if len(values) != len(self.bits):
            raise SimulationError(
                f"{self.name}: loading {len(values)} bits into "
                f"{len(self.bits)}-bit chain"
            )
        self.bits = list(values)

    def read(self) -> list[int]:
        return list(self.bits)

    def reset(self) -> None:
        self.bits = [0] * len(self.bits)
