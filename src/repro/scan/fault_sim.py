"""Bit-parallel stuck-at fault simulation with fault dropping.

Patterns are packed into machine words (one bit per pattern), so each
fault costs one cloud evaluation per batch of up to ``WORD_WIDTH``
patterns instead of one per pattern.  Detected faults are dropped from
subsequent batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.scan.core_model import ScannableCore
from repro.scan.faults import Fault, core_fault_list

#: Patterns per simulation word.  Python ints are unbounded; 64 keeps
#: the bit-twiddling cache-friendly and mirrors a C implementation.
WORD_WIDTH = 64


@dataclass(frozen=True)
class PackedPatterns:
    """A batch of <= WORD_WIDTH patterns packed into per-input words."""

    count: int
    mask: int
    input_words: tuple[int, ...]


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    Attributes:
        total_faults: size of the simulated fault list.
        detected: faults observed at a flip-flop or primary output.
        detecting_pattern: first detecting pattern index per fault.
    """

    total_faults: int
    detected: set[Fault] = field(default_factory=set)
    detecting_pattern: dict[Fault, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 1.0
        return len(self.detected) / self.total_faults


def pack_patterns(
    core: ScannableCore,
    patterns: Sequence["ScanPatternLike"],
) -> list[PackedPatterns]:
    """Pack behavioural patterns into word batches for the cloud."""
    batches: list[PackedPatterns] = []
    for start in range(0, len(patterns), WORD_WIDTH):
        chunk = patterns[start:start + WORD_WIDTH]
        count = len(chunk)
        mask = (1 << count) - 1
        words = [0] * core.cloud.num_inputs
        for bit_index, pattern in enumerate(chunk):
            for pi_index, value in enumerate(pattern.pi):
                if value:
                    words[pi_index] |= 1 << bit_index
            for chain_index, chain_bits in enumerate(pattern.chains):
                chain = core.chains[chain_index]
                for position, value in enumerate(chain_bits):
                    if value:
                        ff = chain[position]
                        words[core.num_pis + ff] |= 1 << bit_index
        batches.append(PackedPatterns(count=count, mask=mask,
                                      input_words=tuple(words)))
    return batches


def run_fault_simulation(
    core: ScannableCore,
    patterns: Sequence["ScanPatternLike"],
    faults: Sequence[Fault] | None = None,
    drop_detected: bool = True,
) -> FaultSimResult:
    """Simulate all faults against all patterns.

    Args:
        core: the scannable core.
        patterns: objects with ``.pi`` (tuple of PI bits) and
            ``.chains`` (per-chain load bits) attributes.
        faults: fault list; defaults to the full single-stuck-at list.
        drop_detected: skip already-detected faults in later batches.
    """
    if faults is None:
        faults = core_fault_list(core)
    result = FaultSimResult(total_faults=len(faults))
    batches = pack_patterns(core, patterns)
    remaining = list(faults)
    pattern_base = 0
    for batch in batches:
        golden = core.cloud.evaluate_words(batch.input_words, batch.mask)
        still_remaining: list[Fault] = []
        for fault in remaining:
            faulty = core.cloud.evaluate_words(
                batch.input_words, batch.mask,
                fault=(fault.node, fault.stuck_value),
            )
            difference = 0
            for good_word, bad_word in zip(golden, faulty):
                difference |= good_word ^ bad_word
            if difference:
                result.detected.add(fault)
                first_bit = (difference & -difference).bit_length() - 1
                result.detecting_pattern[fault] = pattern_base + first_bit
                if not drop_detected:
                    still_remaining.append(fault)
            else:
                still_remaining.append(fault)
        if drop_detected:
            remaining = [f for f in still_remaining
                         if f not in result.detected]
        else:
            remaining = still_remaining
        pattern_base += batch.count
    return result


class ScanPatternLike:
    """Structural typing helper: anything with ``pi`` and ``chains``."""

    pi: tuple[int, ...]
    chains: tuple[tuple[int, ...], ...]
