"""Deterministic ATPG: PODEM over combinational clouds.

Random patterns leave the random-pattern-resistant stuck-at faults
undetected; this module implements the classic PODEM algorithm
(path-oriented decision making, Goel 1981) to target them directly:

* five-valued D-calculus, encoded as (good, faulty) component pairs
  over {0, 1, X} -- D = (1,0), D' = (0,1);
* objectives: activate the fault, then advance the D-frontier;
* backtrace to an unassigned primary input, imply forward, backtrack
  on conflicts, bounded by a backtrack budget;
* a verdict per fault: a test cube, *proven untestable* (search space
  exhausted -- the fault is redundant), or aborted (budget).

The test-set generator uses PODEM as a top-up phase after random
saturation, which pushes fault coverage to (or near) the provable
maximum for these cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.scan.core_model import CombCloud, ScannableCore
from repro.scan.faults import Fault

#: Three-valued components.
_0, _1, _X = 0, 1, 2

#: Verdicts.
TESTABLE = "testable"
UNTESTABLE = "untestable"
ABORTED = "aborted"

#: Gate behaviour tables: (controlling value, inversion).
_GATE_CONTROL = {
    "AND": (_0, False),
    "NAND": (_0, True),
    "OR": (_1, False),
    "NOR": (_1, True),
}


def _not3(v: int) -> int:
    if v == _X:
        return _X
    return 1 - v


def _and3(a: int, b: int) -> int:
    if a == _0 or b == _0:
        return _0
    if a == _1 and b == _1:
        return _1
    return _X


def _or3(a: int, b: int) -> int:
    if a == _1 or b == _1:
        return _1
    if a == _0 and b == _0:
        return _0
    return _X


def _xor3(a: int, b: int) -> int:
    if a == _X or b == _X:
        return _X
    return a ^ b


@dataclass(frozen=True)
class PodemResult:
    """Outcome of one PODEM run.

    Attributes:
        verdict: ``"testable"`` / ``"untestable"`` / ``"aborted"``.
        assignment: PI-space input values (cloud input index -> 0/1)
            for testable faults; unassigned inputs are free.
        backtracks: search effort spent.
    """

    verdict: str
    assignment: dict[int, int]
    backtracks: int


class PodemAtpg:
    """PODEM engine bound to one cloud."""

    def __init__(self, cloud: CombCloud, backtrack_limit: int = 128) -> None:
        self.cloud = cloud
        self.backtrack_limit = backtrack_limit
        # Fanout: node -> ops (by op index) reading it.
        self._fanout: list[list[int]] = [[] for _ in range(cloud.num_nodes)]
        for op_index, op in enumerate(cloud.ops):
            self._fanout[op.a].append(op_index)
            if not op.is_unary():
                self._fanout[op.b].append(op_index)
        self._output_set = set(cloud.outputs)

    # -- public -----------------------------------------------------------

    def generate(self, fault: Fault) -> PodemResult:
        """Find a test for one stuck-at fault, or prove none exists."""
        if not 0 <= fault.node < self.cloud.num_nodes:
            raise ConfigurationError(f"fault node {fault.node} out of range")
        self._fault = fault
        self._good = [_X] * self.cloud.num_nodes
        self._bad = [_X] * self.cloud.num_nodes
        self._pi_values: dict[int, int] = {}
        self._backtracks = 0
        decisions: list[tuple[int, int, bool]] = []  # (pi, value, flipped)
        self._imply_all()
        while True:
            if self._test_found():
                return PodemResult(TESTABLE, dict(self._pi_values),
                                   self._backtracks)
            objective = self._objective()
            if objective is not None:
                pi, value = self._backtrace(*objective)
                decisions.append((pi, value, False))
                self._pi_values[pi] = value
                self._imply_all()
                continue
            # No viable objective: conflict -- backtrack.
            while decisions:
                pi, value, flipped = decisions.pop()
                del self._pi_values[pi]
                if not flipped:
                    self._backtracks += 1
                    if self._backtracks > self.backtrack_limit:
                        return PodemResult(ABORTED, {}, self._backtracks)
                    decisions.append((pi, 1 - value, True))
                    self._pi_values[pi] = 1 - value
                    break
            else:
                return PodemResult(UNTESTABLE, {}, self._backtracks)
            self._imply_all()

    # -- simulation --------------------------------------------------------------

    def _imply_all(self) -> None:
        """Forward five-valued evaluation from the current PI values."""
        good = self._good
        bad = self._bad
        for node in range(self.cloud.num_inputs):
            value = self._pi_values.get(node, _X)
            good[node] = value
            bad[node] = value
        if self._fault.node < self.cloud.num_inputs:
            bad[self._fault.node] = self._fault.stuck_value
        base = self.cloud.num_inputs
        for op_index, op in enumerate(self.cloud.ops):
            node = base + op_index
            g = self._eval_component(op, good)
            b = self._eval_component(op, bad)
            if node == self._fault.node:
                b = self._fault.stuck_value
            good[node] = g
            bad[node] = b

    @staticmethod
    def _eval_component(op, values: list[int]) -> int:
        a = values[op.a]
        if op.op == "NOT":
            return _not3(a)
        if op.op == "BUF":
            return a
        b = values[op.b]
        if op.op == "AND":
            return _and3(a, b)
        if op.op == "NAND":
            return _not3(_and3(a, b))
        if op.op == "OR":
            return _or3(a, b)
        if op.op == "NOR":
            return _not3(_or3(a, b))
        return _xor3(a, b)

    # -- PODEM machinery ------------------------------------------------------------

    def _is_d(self, node: int) -> bool:
        g, b = self._good[node], self._bad[node]
        return g != _X and b != _X and g != b

    def _test_found(self) -> bool:
        return any(self._is_d(node) for node in self._output_set)

    def _objective(self) -> tuple[int, int] | None:
        """Next (node, value) goal, or None when the search is stuck."""
        fault_node = self._fault.node
        g = self._good[fault_node]
        wanted = 1 - self._fault.stuck_value
        if g == _X:
            return (fault_node, wanted)
        if g != wanted:
            return None  # activation conflict
        if not self._is_d(fault_node) and fault_node >= self.cloud.num_inputs:
            # Activated but masked at the site itself: impossible here.
            if self._bad[fault_node] == self._good[fault_node]:
                return None
        # Advance the D-frontier: pick a frontier op with a free side
        # input and demand its non-controlling value.
        for op_index in self._d_frontier():
            op = self.cloud.ops[op_index]
            control = _GATE_CONTROL.get(op.op)
            for source in ((op.a,) if op.is_unary() else (op.a, op.b)):
                if self._good[source] == _X:
                    if control is None:  # XOR/XNOR/NOT/BUF: anything
                        return (source, 0)
                    return (source, 1 - control[0])
        return None

    def _d_frontier(self) -> list[int]:
        """Ops with a D on an input and an undetermined output.

        "Undetermined" means the composite value is not yet known: at
        least one of the good/faulty components is still X (e.g.
        ``AND(D, X)`` has good = X, bad = 0 -- setting the side input
        to 1 still turns the output into a D, so the op is frontier).
        """
        base = self.cloud.num_inputs
        frontier = []
        for op_index, op in enumerate(self.cloud.ops):
            node = base + op_index
            if self._good[node] != _X and self._bad[node] != _X:
                continue
            if self._is_d(node):
                continue
            sources = (op.a,) if op.is_unary() else (op.a, op.b)
            if any(self._is_d(s) for s in sources):
                frontier.append(op_index)
        return frontier

    def _backtrace(self, node: int, value: int) -> tuple[int, int]:
        """Walk an objective back to an unassigned primary input."""
        current, wanted = node, value
        for _ in range(self.cloud.num_nodes + 1):
            if current < self.cloud.num_inputs:
                return (current, wanted)
            op = self.cloud.ops[current - self.cloud.num_inputs]
            if op.op in ("NOT",):
                current, wanted = op.a, _not3(wanted)
                continue
            if op.op == "BUF":
                current = op.a
                continue
            control = _GATE_CONTROL.get(op.op)
            sources = (op.a, op.b)
            unassigned = [s for s in sources if self._good[s] == _X]
            if not unassigned:
                # Objective already decided by implications; pick any
                # source to keep the walk moving towards a PI.
                unassigned = [sources[0]]
            if control is not None:
                controlling, inverted = control
                goal = _not3(wanted) if inverted else wanted
                if goal == controlling:
                    current, wanted = unassigned[0], controlling
                else:
                    current, wanted = unassigned[0], 1 - controlling
                continue
            # XOR/XNOR: fix one free input to an arbitrary value and
            # let implication sort out the rest.
            known = [s for s in sources if self._good[s] != _X]
            if known:
                other = self._good[known[0]]
                target = _xor3(wanted, other)
                if op.op == "XNOR":
                    target = _not3(target)
                if target == _X:
                    target = 0
                current, wanted = unassigned[0], target
            else:
                current, wanted = unassigned[0], 0
        raise ConfigurationError("backtrace failed to reach an input")


def podem_pattern(
    core: ScannableCore,
    fault: Fault,
    *,
    fill_seed: int = 0,
    backtrack_limit: int = 128,
):
    """A complete :class:`~repro.scan.atpg.ScanPattern` for one fault.

    Returns ``(pattern, verdict)``; the pattern is ``None`` unless the
    verdict is ``"testable"``.  Free positions are filled
    pseudo-randomly (seeded) so the pattern may detect extra faults.
    """
    import random

    from repro.scan.atpg import ScanPattern

    engine = PodemAtpg(core.cloud, backtrack_limit=backtrack_limit)
    result = engine.generate(fault)
    if result.verdict != TESTABLE:
        return None, result.verdict
    rng = random.Random(fill_seed)
    full = [
        result.assignment.get(index, rng.randint(0, 1))
        for index in range(core.cloud.num_inputs)
    ]
    pi = tuple(full[: core.num_pis])
    chains = tuple(
        tuple(full[core.num_pis + ff] for ff in chain)
        for chain in core.chains
    )
    return ScanPattern(pi=pi, chains=chains), TESTABLE
