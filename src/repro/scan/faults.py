"""Single stuck-at fault model over combinational clouds."""

from __future__ import annotations

from dataclasses import dataclass

from repro.scan.core_model import CombCloud, ScannableCore


@dataclass(frozen=True, order=True)
class Fault:
    """A single stuck-at fault on one cloud node's output.

    Attributes:
        node: cloud node id (input node or op output).
        stuck_value: 0 or 1.
    """

    node: int
    stuck_value: int

    def describe(self) -> str:
        return f"node{self.node}/SA{self.stuck_value}"


def all_stuck_at_faults(cloud: CombCloud) -> list[Fault]:
    """The collapsed-naive full fault list: SA0 and SA1 on every node."""
    return [
        Fault(node=node, stuck_value=value)
        for node in range(cloud.num_nodes)
        for value in (0, 1)
    ]


def core_fault_list(core: ScannableCore) -> list[Fault]:
    """All single stuck-at faults of a scannable core's logic."""
    return all_stuck_at_faults(core.cloud)
