"""Synthetic scannable cores.

A core is a random (but seeded, hence reproducible) combinational cloud
whose inputs are the core's primary inputs plus the scan flip-flop
outputs, and whose outputs are the flip-flop next-state functions plus
the primary outputs.  Flip-flops are partitioned into scan chains.

The cloud evaluator is *bit-parallel*: every node value is a Python int
holding one bit per test pattern, so 64 (or any number of) patterns are
simulated in one pass -- the standard trick that makes stuck-at fault
simulation tractable in pure Python.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError

#: Supported cloud operators.
_BINARY_OPS = ("AND", "OR", "XOR", "NAND", "NOR")
_UNARY_OPS = ("NOT", "BUF")


@dataclass(frozen=True)
class CombOp:
    """One cloud node: ``op`` over node ids ``a`` (and ``b`` if binary)."""

    op: str
    a: int
    b: int = -1

    def is_unary(self) -> bool:
        return self.op in _UNARY_OPS


class CombCloud:
    """A random combinational network in topological order.

    Node ids: ``0 .. num_inputs-1`` are inputs; node ``num_inputs + i``
    is the output of ``ops[i]``.
    """

    def __init__(
        self,
        num_inputs: int,
        ops: Sequence[CombOp],
        outputs: Sequence[int],
    ) -> None:
        if num_inputs < 1:
            raise ConfigurationError("cloud needs at least one input")
        self.num_inputs = num_inputs
        self.ops = list(ops)
        self.num_nodes = num_inputs + len(self.ops)
        for index, op in enumerate(self.ops):
            node_id = num_inputs + index
            if not 0 <= op.a < node_id:
                raise ConfigurationError(f"op {index}: input a out of order")
            if not op.is_unary() and not 0 <= op.b < node_id:
                raise ConfigurationError(f"op {index}: input b out of order")
            if op.op not in _BINARY_OPS and op.op not in _UNARY_OPS:
                raise ConfigurationError(f"op {index}: unknown op {op.op!r}")
        self.outputs = list(outputs)
        for node in self.outputs:
            if not 0 <= node < self.num_nodes:
                raise ConfigurationError(f"output node {node} out of range")

    @classmethod
    def random(
        cls,
        num_inputs: int,
        num_ops: int,
        num_outputs: int,
        seed: int,
    ) -> "CombCloud":
        """Seeded random cloud with locality-biased connectivity."""
        rng = random.Random(seed)
        ops: list[CombOp] = []
        for index in range(num_ops):
            node_id = num_inputs + index
            kind = rng.choice(_BINARY_OPS + _UNARY_OPS
                              if index % 7 == 6 else _BINARY_OPS)
            # Bias towards recent nodes for depth, keep some fan-in from
            # primary inputs so they stay relevant.
            def pick() -> int:
                if node_id > num_inputs and rng.random() < 0.7:
                    low = max(0, node_id - 3 * num_inputs)
                    return rng.randrange(low, node_id)
                return rng.randrange(0, node_id)

            a = pick()
            if kind in _UNARY_OPS:
                ops.append(CombOp(kind, a))
            else:
                b = pick()
                ops.append(CombOp(kind, a, b))
        total = num_inputs + num_ops
        # Prefer late nodes as outputs so logic is observable.
        population = list(range(total))
        weights = [1 + 3 * node / total for node in population]
        outputs = rng.choices(population, weights=weights, k=num_outputs)
        return cls(num_inputs=num_inputs, ops=ops, outputs=outputs)

    # -- evaluation ----------------------------------------------------------

    def evaluate_words(
        self,
        input_words: Sequence[int],
        mask: int,
        fault: "tuple[int, int] | None" = None,
    ) -> list[int]:
        """Evaluate all nodes bit-parallel; returns output-node words.

        Args:
            input_words: one word per input node (bit ``v`` = pattern v).
            mask: ``(1 << num_patterns) - 1``, for complementation.
            fault: optional ``(node_id, stuck_value)`` single stuck-at
                fault forced onto a node's output.
        """
        if len(input_words) != self.num_inputs:
            raise SimulationError(
                f"cloud has {self.num_inputs} inputs, got {len(input_words)}"
            )
        values = list(input_words) + [0] * len(self.ops)
        if fault is not None and fault[0] < self.num_inputs:
            values[fault[0]] = mask if fault[1] else 0
        base = self.num_inputs
        for index, op in enumerate(self.ops):
            node_id = base + index
            a = values[op.a]
            if op.op == "AND":
                out = a & values[op.b]
            elif op.op == "OR":
                out = a | values[op.b]
            elif op.op == "XOR":
                out = a ^ values[op.b]
            elif op.op == "NAND":
                out = ~(a & values[op.b]) & mask
            elif op.op == "NOR":
                out = ~(a | values[op.b]) & mask
            elif op.op == "NOT":
                out = ~a & mask
            else:  # BUF
                out = a
            if fault is not None and fault[0] == node_id:
                out = mask if fault[1] else 0
            values[node_id] = out
        return [values[node] for node in self.outputs]


class ScannableCore:
    """A scan-testable core: cloud + scan flip-flops in chains.

    Cloud inputs are ordered ``[PI_0..PI_{npi-1}, FF_0..FF_{nff-1}]``;
    cloud outputs ``[D_0..D_{nff-1}, PO_0..PO_{npo-1}]``.

    The single-pattern interface (:meth:`scan_shift`, :meth:`capture`)
    drives the system simulation; the word-parallel path is used by
    fault simulation and ATPG.
    """

    def __init__(
        self,
        name: str,
        cloud: CombCloud,
        num_pis: int,
        num_pos: int,
        chains: Sequence[Sequence[int]],
    ) -> None:
        self.name = name
        self.cloud = cloud
        self.num_pis = num_pis
        self.num_pos = num_pos
        self.chains = [list(chain) for chain in chains]
        flat = [ff for chain in self.chains for ff in chain]
        self.num_ffs = len(flat)
        if sorted(flat) != list(range(self.num_ffs)):
            raise ConfigurationError(
                f"{name}: chains must partition flip-flops 0..{self.num_ffs - 1}"
            )
        if cloud.num_inputs != num_pis + self.num_ffs:
            raise ConfigurationError(
                f"{name}: cloud has {cloud.num_inputs} inputs, expected "
                f"{num_pis} PIs + {self.num_ffs} FFs"
            )
        if len(cloud.outputs) != self.num_ffs + num_pos:
            raise ConfigurationError(
                f"{name}: cloud has {len(cloud.outputs)} outputs, expected "
                f"{self.num_ffs} D + {num_pos} POs"
            )
        self.ff_values = [0] * self.num_ffs
        #: Optional injected stuck-at fault ``(node, value)`` applied by
        #: :meth:`capture` -- lets a system instance be defective while
        #: expected responses come from a clean build of the same spec.
        self.fault: tuple[int, int] | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        name: str,
        *,
        seed: int,
        num_pis: int = 4,
        num_pos: int = 4,
        num_ffs: int = 24,
        num_chains: int = 2,
        num_gates: int | None = None,
        chain_lengths: Sequence[int] | None = None,
    ) -> "ScannableCore":
        """Generate a seeded random scannable core.

        ``chain_lengths`` overrides the default balanced partition --
        used by the scan-balancing experiment (C2) to build deliberately
        skewed chains.
        """
        if num_ffs < 1 or num_chains < 1 or num_chains > num_ffs:
            raise ConfigurationError(
                f"{name}: bad scan parameters "
                f"(ffs={num_ffs}, chains={num_chains})"
            )
        if num_gates is None:
            num_gates = 4 * (num_pis + num_ffs)
        cloud = CombCloud.random(
            num_inputs=num_pis + num_ffs,
            num_ops=num_gates,
            num_outputs=num_ffs + num_pos,
            seed=seed,
        )
        if chain_lengths is None:
            base, extra = divmod(num_ffs, num_chains)
            chain_lengths = [
                base + (1 if index < extra else 0)
                for index in range(num_chains)
            ]
        if sum(chain_lengths) != num_ffs or len(chain_lengths) != num_chains:
            raise ConfigurationError(
                f"{name}: chain lengths {chain_lengths} do not partition "
                f"{num_ffs} flip-flops into {num_chains} chains"
            )
        chains = []
        next_ff = 0
        for length in chain_lengths:
            chains.append(list(range(next_ff, next_ff + length)))
            next_ff += length
        return cls(name=name, cloud=cloud, num_pis=num_pis,
                   num_pos=num_pos, chains=chains)

    # -- geometry ------------------------------------------------------------

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    @property
    def chain_lengths(self) -> tuple[int, ...]:
        return tuple(len(chain) for chain in self.chains)

    @property
    def max_chain_length(self) -> int:
        return max(self.chain_lengths)

    # -- single-pattern behavioural interface ----------------------------------

    def reset(self) -> None:
        self.ff_values = [0] * self.num_ffs

    def scan_shift(self, chain_index: int, bit_in: int) -> int:
        """Shift one chain by one bit; returns the scan-out bit."""
        if bit_in not in (0, 1):
            raise SimulationError(
                f"{self.name}: scan input must be 0/1, got {bit_in!r}"
            )
        chain = self.chains[chain_index]
        out_bit = self.ff_values[chain[-1]]
        for position in range(len(chain) - 1, 0, -1):
            self.ff_values[chain[position]] = self.ff_values[chain[position - 1]]
        self.ff_values[chain[0]] = bit_in
        return out_bit

    def scan_out_bit(self, chain_index: int) -> int:
        """The bit currently presented at a chain's scan-out."""
        return self.ff_values[self.chains[chain_index][-1]]

    def capture(self, pi_values: Sequence[int]) -> list[int]:
        """One functional clock: FFs load their next state; returns POs."""
        if len(pi_values) != self.num_pis:
            raise SimulationError(
                f"{self.name}: expected {self.num_pis} PI values, "
                f"got {len(pi_values)}"
            )
        inputs = list(pi_values) + self.ff_values
        outputs = self.cloud.evaluate_words(inputs, mask=1, fault=self.fault)
        self.ff_values = [v & 1 for v in outputs[: self.num_ffs]]
        return [v & 1 for v in outputs[self.num_ffs:]]

    def load_chain(self, chain_index: int, bits: Sequence[int]) -> None:
        """Directly load a chain (``bits[i]`` lands in chain position i)."""
        chain = self.chains[chain_index]
        if len(bits) != len(chain):
            raise SimulationError(
                f"{self.name}: chain {chain_index} holds {len(chain)} bits, "
                f"got {len(bits)}"
            )
        for position, bit in enumerate(bits):
            self.ff_values[chain[position]] = bit

    def read_chain(self, chain_index: int) -> list[int]:
        """Chain contents, position 0 (scan-in side) first."""
        return [self.ff_values[ff] for ff in self.chains[chain_index]]

    def __repr__(self) -> str:
        return (
            f"ScannableCore({self.name!r}, pis={self.num_pis}, "
            f"pos={self.num_pos}, ffs={self.num_ffs}, "
            f"chains={list(self.chain_lengths)})"
        )
