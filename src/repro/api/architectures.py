"""TAM architectures behind one ``design -> schedule -> evaluate/run``
lifecycle.

Every architecture the paper compares -- CAS-BUS and the five
alternative TAM styles -- registers here under a string key, so
``get_architecture("casbus")`` and ``get_architecture("mux-bus")`` are
interchangeable in every experiment:

======================  ==============================================
key                     implementation
======================  ==============================================
``casbus``              :class:`repro.baselines.casbus.CasBusTam` +
                        the cycle-accurate
                        :class:`repro.core.tam.CasBusTamDesign`
``mux-bus``             :class:`repro.baselines.mux_bus.MultiplexedBus`
``daisy-chain``         :class:`repro.baselines.daisy.DaisyChain`
``static-distribution`` :class:`repro.baselines.distribution.StaticDistribution`
``direct-access``       :class:`repro.baselines.direct.DirectAccess`
``system-bus``          :class:`repro.baselines.sysbus.SystemBusTam`
======================  ==============================================

Only the CAS-BUS supports cycle-accurate simulation (it is the paper's
architecture; the baselines exist as timing models).  Experiments ask
for it implicitly: :meth:`DesignedTam.run` simulates when the
architecture, workload and scheduler allow it and falls back to the
abstract timing model otherwise, always returning a uniform
:class:`~repro.api.results.RunResult`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import ConfigurationError
from repro.baselines.base import TamBaseline, TamReport
from repro.baselines.casbus import CasBusTam
from repro.baselines.daisy import DaisyChain
from repro.baselines.direct import DirectAccess
from repro.baselines.distribution import StaticDistribution
from repro.baselines.mux_bus import MultiplexedBus
from repro.baselines.sysbus import SystemBusTam
from repro.soc.core import CoreTestParams
from repro.soc.soc import SocSpec
from repro.api.registry import get_scheduler, register_architecture
from repro.api.results import (
    SOURCE_MODEL,
    SOURCE_SIMULATION,
    RunConfig,
    RunResult,
    SessionDetail,
)
from repro.api.schedulers import ScheduleOutcome, SchedulerStrategy

#: Anything an experiment accepts as a workload (a string is resolved
#: through the :mod:`repro.api.workloads` registry).
WorkloadLike = Union["Workload", SocSpec, Sequence[CoreTestParams], str]


@dataclass(frozen=True)
class Workload:
    """A normalised experiment workload.

    Either a full :class:`~repro.soc.soc.SocSpec` (simulatable) or a
    bag of abstract :class:`~repro.soc.core.CoreTestParams` (model
    only, e.g. the ITC'02-style tables).
    """

    name: str
    cores: tuple[CoreTestParams, ...]
    bus_width: int | None = None
    soc: SocSpec | None = None

    @classmethod
    def of(cls, workload: WorkloadLike) -> "Workload":
        if isinstance(workload, Workload):
            return workload
        if isinstance(workload, str):
            from repro.api.workloads import get_workload

            return get_workload(workload)
        if isinstance(workload, SocSpec):
            workload.validate()
            return cls(
                name=workload.name,
                cores=tuple(core.test_params() for core in workload.cores),
                bus_width=workload.bus_width,
                soc=workload,
            )
        cores = tuple(workload)
        for core in cores:
            if not isinstance(core, CoreTestParams):
                raise ConfigurationError(
                    f"workload entries must be CoreTestParams, "
                    f"got {type(core).__name__}"
                )
        if not cores:
            raise ConfigurationError("a workload needs at least one core")
        return cls(name=f"cores[{len(cores)}]", cores=cores)

    def identity(self) -> dict:
        """Canonical JSON-ready identity (campaign config hashing).

        Simulatable workloads serialize their full :class:`SocSpec`
        (structural identity: core specs, seeds, interconnects);
        abstract core tables serialize their
        :class:`~repro.soc.core.CoreTestParams` plus the workload name,
        so registered tables (``itc02-d695``) hash stably across
        processes while remaining distinct from one another.  Enum
        members serialize by value; the payload is pure
        JSON-serializable data.
        """
        import dataclasses

        def jsonable(value):
            if isinstance(value, enum.Enum):
                return value.value
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                return {
                    f.name: jsonable(getattr(value, f.name))
                    for f in dataclasses.fields(value)
                }
            if isinstance(value, (tuple, list)):
                return [jsonable(item) for item in value]
            if isinstance(value, dict):
                return {key: jsonable(item) for key, item in value.items()}
            return value

        if self.soc is not None:
            return {"kind": "soc", "spec": jsonable(self.soc)}
        return {
            "kind": "cores",
            "name": self.name,
            "bus_width": self.bus_width,
            "cores": [jsonable(core) for core in self.cores],
        }

    def resolve_width(self, requested: int | None) -> int:
        width = requested if requested is not None else self.bus_width
        if width is None:
            raise ConfigurationError(
                f"workload {self.name!r} has no intrinsic bus width; "
                f"set RunConfig.bus_width"
            )
        if width < 1:
            raise ConfigurationError(
                f"bus width must be >= 1, got {width}"
            )
        return width


class TamArchitecture(abc.ABC):
    """One test access mechanism style, pluggable by name."""

    #: Canonical registry key.
    key: str = "architecture"
    #: Whether the cycle-accurate executor can run this architecture.
    supports_simulation: bool = False
    #: Whether the timing model consults a scheduler strategy.
    uses_scheduler: bool = False

    @abc.abstractmethod
    def model(
        self,
        *,
        scheduler: SchedulerStrategy | None = None,
        cas_policy: str | None = None,
    ) -> TamBaseline:
        """The abstract timing model (a legacy baseline instance)."""

    def design(self, workload: WorkloadLike) -> "DesignedTam":
        """Bind this architecture to a workload (lifecycle step 1)."""
        return DesignedTam(architecture=self, workload=Workload.of(workload))

    def evaluate(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
        *,
        scheduler: SchedulerStrategy | None = None,
        cas_policy: str | None = None,
    ) -> TamReport:
        """Abstract-model cost report (legacy-compatible)."""
        return self.model(
            scheduler=scheduler, cas_policy=cas_policy
        ).evaluate(cores, bus_width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.key!r}>"


@dataclass(frozen=True)
class DesignedTam:
    """An architecture bound to a workload: schedule, evaluate, run."""

    architecture: TamArchitecture
    workload: Workload

    # -- lifecycle ---------------------------------------------------------

    def schedule(
        self, config: RunConfig | None = None
    ) -> ScheduleOutcome | None:
        """The scheduler strategy's outcome, or ``None`` when the
        architecture's timing model is fixed (non-scheduling TAMs)."""
        config = config or RunConfig(architecture=self.architecture.key)
        if not self.architecture.uses_scheduler:
            return None
        width = self.workload.resolve_width(config.bus_width)
        strategy = get_scheduler(config.scheduler)
        return strategy.schedule(
            self.workload.cores, width, cas_policy=config.cas_policy
        )

    def evaluate(self, config: RunConfig | None = None) -> RunResult:
        """Abstract-timing-model result (never simulates)."""
        config = config or RunConfig(architecture=self.architecture.key)
        width = self.workload.resolve_width(config.bus_width)
        strategy: SchedulerStrategy | None = None
        scheduler_name = ""
        if self.architecture.uses_scheduler:
            strategy = get_scheduler(config.scheduler)
            scheduler_name = strategy.name
        report = self.architecture.evaluate(
            self.workload.cores, width,
            scheduler=strategy, cas_policy=config.cas_policy,
        )
        return RunResult(
            architecture=self.architecture.key,
            scheduler=scheduler_name,
            workload=self.workload.name,
            bus_width=width,
            test_cycles=report.test_cycles,
            config_cycles=report.config_cycles,
            extra_pins=report.extra_pins,
            area_ge=report.area_proxy,
            source=SOURCE_MODEL,
            passed=None,
            label=config.label,
        )

    def run(self, config: RunConfig | None = None) -> RunResult:
        """Cycle-accurate simulation when possible, model otherwise."""
        config = config or RunConfig(architecture=self.architecture.key)
        blocker = self._simulation_blocker(config)
        if config.simulate is True and blocker:
            raise ConfigurationError(f"cannot simulate: {blocker}")
        if config.simulate is False and config.inject_faults:
            raise ConfigurationError(
                "fault injection needs cycle-accurate simulation "
                "(simulate=False forbids it)"
            )
        if blocker is None and config.simulate is not False:
            return self._simulate(config)
        if config.inject_faults:
            raise ConfigurationError(
                f"fault injection needs cycle-accurate simulation, "
                f"but {blocker}"
            )
        if config.verify:
            self._verify_model_outcome(config)
        return self.evaluate(config)

    # -- internals ---------------------------------------------------------

    def _verify_model_outcome(self, config: RunConfig) -> None:
        """Statically check the scheduler's outcome before reporting it.

        Model-path counterpart of the executor's pre-dispatch
        verification: the strategy's schedule object is re-derived
        against the cost model and any inconsistency raises
        :class:`~repro.errors.VerificationError` instead of entering a
        result.  Fixed-model architectures have nothing to check.
        """
        outcome = self.schedule(config)
        if outcome is None:
            return
        from repro.schedule.model import TamProblem
        from repro.verify import verify_outcome

        problem = TamProblem.of(
            self.workload.cores,
            self.workload.resolve_width(config.bus_width),
            cas_policy=config.cas_policy,
        )
        verify_outcome(outcome, problem).raise_if_failed(
            f"{self.architecture.key}/{self.workload.name}"
        )

    def _simulation_blocker(self, config: RunConfig) -> str | None:
        """Why this run cannot simulate, or ``None`` if it can."""
        if not self.architecture.supports_simulation:
            return (f"architecture {self.architecture.key!r} has no "
                    f"behavioural model (abstract timing only)")
        if self.workload.soc is None:
            return (f"workload {self.workload.name!r} is abstract "
                    f"core parameters, not a simulatable SocSpec")
        if (config.bus_width is not None
                and config.bus_width != self.workload.soc.bus_width):
            return (f"bus width override {config.bus_width} differs from "
                    f"the SoC's physical width "
                    f"{self.workload.soc.bus_width}")
        strategy = get_scheduler(config.scheduler)
        if not strategy.executable:
            return (f"scheduler {strategy.name!r} produces schedules the "
                    f"session executor cannot run (only 'greedy' is "
                    f"executable)")
        return None

    def _simulate(self, config: RunConfig) -> RunResult:
        from repro.core.tam import CasBusTamDesign

        soc = self.workload.soc
        assert soc is not None
        # A pinned policy sizes the generated CAS hardware; the default
        # None keeps the facade's historical "all" enumeration.
        facade = CasBusTamDesign.for_soc(
            soc,
            policy="all" if config.cas_policy is None
            else config.cas_policy,
        )
        program = facade.run(
            inject_faults=config.inject_faults,
            backend=config.backend,
            capture_syndromes=config.capture_syndromes,
            verify=config.verify,
        )
        sessions = tuple(
            SessionDetail(
                label=session.label,
                config_cycles=session.config_cycles,
                test_cycles=session.test_cycles,
                cores=tuple(r.name for r in session.core_results),
                passed=session.passed,
            )
            for session in program.sessions
        )
        return RunResult(
            architecture=self.architecture.key,
            scheduler=get_scheduler(config.scheduler).name,
            workload=self.workload.name,
            bus_width=soc.bus_width,
            test_cycles=program.test_cycles,
            config_cycles=program.config_cycles,
            extra_pins=soc.bus_width,
            area_ge=facade.total_cas_ge,
            source=SOURCE_SIMULATION,
            passed=program.passed,
            sessions=sessions,
            label=config.label,
        )


class CasBusArchitecture(TamArchitecture):
    """The paper's reconfigurable CAS-BUS (simulatable, scheduled)."""

    key = "casbus"
    supports_simulation = True
    uses_scheduler = True

    def model(self, *, scheduler=None, cas_policy=None) -> TamBaseline:
        return CasBusTam(policy=cas_policy, scheduler=scheduler)

    def facade(self, soc: SocSpec):
        """The legacy :class:`~repro.core.tam.CasBusTamDesign` shim."""
        from repro.core.tam import CasBusTamDesign

        return CasBusTamDesign.for_soc(soc)


class FixedModelArchitecture(TamArchitecture):
    """A baseline with a fixed timing model (no scheduler, no sim)."""

    baseline_cls: type = TamBaseline

    def model(self, *, scheduler=None, cas_policy=None) -> TamBaseline:
        return self.baseline_cls()


class MuxBusArchitecture(FixedModelArchitecture):
    key = "mux-bus"
    baseline_cls = MultiplexedBus


class DaisyChainArchitecture(FixedModelArchitecture):
    key = "daisy-chain"
    baseline_cls = DaisyChain


class StaticDistributionArchitecture(FixedModelArchitecture):
    key = "static-distribution"
    baseline_cls = StaticDistribution


class DirectAccessArchitecture(FixedModelArchitecture):
    key = "direct-access"
    baseline_cls = DirectAccess


class SystemBusArchitecture(FixedModelArchitecture):
    key = "system-bus"
    baseline_cls = SystemBusTam


#: Canonical comparison order (CAS-BUS last, matching ``all_baselines``).
BASELINE_ORDER: tuple[str, ...] = (
    "mux-bus", "daisy-chain", "static-distribution",
    "direct-access", "system-bus", "casbus",
)


def registered_baselines() -> list[TamBaseline]:
    """Legacy baseline instances in canonical order, via the registry.

    Backs :func:`repro.baselines.all_baselines`, so the shim and the
    registry can never diverge.
    """
    from repro.api.registry import get_architecture

    return [get_architecture(key).model() for key in BASELINE_ORDER]


register_architecture(
    "casbus", CasBusArchitecture, aliases=("cas-bus", "cas_bus"),
    description="The paper's reconfigurable CAS-BUS (simulatable, "
                "scheduled).",
)
register_architecture(
    "mux-bus", MuxBusArchitecture, aliases=("mux_bus", "multiplexed-bus"),
    description="Multiplexed test bus: one core at a time owns the bus.",
)
register_architecture(
    "daisy-chain", DaisyChainArchitecture, aliases=("daisy", "daisy_chain"),
    description="Daisy-chained wrappers: one serial path through every "
                "core.",
)
register_architecture(
    "static-distribution", StaticDistributionArchitecture,
    aliases=("distribution", "testrail"),
    description="Fixed wire distribution frozen at tape-out (TestRail "
                "style).",
)
register_architecture(
    "direct-access", DirectAccessArchitecture,
    aliases=("direct", "direct_access"),
    description="Dedicated pins per core: fastest, most expensive in "
                "pins.",
)
register_architecture(
    "system-bus", SystemBusArchitecture, aliases=("sysbus", "system_bus"),
    description="Reuse of the functional system bus for test access.",
)
