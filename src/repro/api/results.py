"""Experiment configuration and result records.

:class:`RunConfig` is the full recipe for one experiment run (what
architecture, which scheduler, which pin budget, which faults);
:class:`RunResult` is the uniform outcome every architecture reports,
whether it came from the cycle-accurate simulator (CAS-BUS on a real
SoC) or from the abstract timing model (baselines and width sweeps).

Results are plain frozen dataclasses: hashable, picklable (they cross
process boundaries in :func:`repro.api.runner.run_many`) and directly
tabulatable via :func:`results_table` +
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

#: ``RunResult.source`` values.
SOURCE_SIMULATION = "simulation"
SOURCE_MODEL = "model"

#: Version stamped into every serialized record (campaign stores,
#: ``to_dict`` payloads).  Bump on incompatible shape changes; readers
#: refuse records whose schema is newer than what they understand.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RunConfig:
    """One experiment recipe.

    Attributes:
        architecture: registry name of the TAM architecture.
        scheduler: registry name of the scheduler strategy (used by
            architectures that schedule; baselines with a fixed timing
            model ignore it).
        bus_width: pin budget N; ``None`` uses the workload's own width.
        cas_policy: CAS scheme-enumeration policy; a fixed policy
            string (e.g. ``"contiguous"``) is honoured everywhere --
            model configuration costs and generated simulation
            hardware alike.  The default ``None`` keeps each engine's
            historical default: the designer rule of
            :func:`repro.core.instruction.practical_policy` in the
            abstract model (the legacy ``CasBusTam()`` default) and
            ``"all"`` for simulated CAS hardware (the legacy
            ``CasBusTamDesign.for_soc`` default).
        inject_faults: core name -> fault, passed to the behavioural
            system builder (simulation runs only).
        simulate: force (``True``) or forbid (``False``) cycle-accurate
            simulation; ``None`` simulates whenever the architecture,
            workload and scheduler support it.
        backend: simulation engine -- ``"auto"`` (compiled kernel when
            possible, the default), ``"kernel"`` or ``"legacy"``; see
            :class:`~repro.sim.session.SessionExecutor`.
        capture_syndromes: record bit-level failing positions
            (:class:`~repro.diagnose.syndrome.Syndrome`) on simulated
            core results; off by default and free when off (cycle
            counts never change either way).
        verify: run the static verifier (:mod:`repro.verify`) at the
            fail-fast boundaries -- executor pre-dispatch, campaign
            record append, model-path scheduling.  On by default;
            identity-neutral (never enters the config hash).
        label: free-form tag copied onto the result.
    """

    architecture: str = "casbus"
    scheduler: str = "greedy"
    bus_width: int | None = None
    cas_policy: str | None = None
    inject_faults: Mapping[str, tuple] | None = None
    simulate: bool | None = None
    backend: str = "auto"
    capture_syndromes: bool = False
    verify: bool = True
    label: str = ""

    def evolve(self, **changes) -> "RunConfig":
        """A copy with ``changes`` applied (builder plumbing)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`).

        Fault tuples become lists and the fault mapping is emitted in
        sorted key order, so equal configs serialize identically
        regardless of construction order.
        """
        return {
            "architecture": self.architecture,
            "scheduler": self.scheduler,
            "bus_width": self.bus_width,
            "cas_policy": self.cas_policy,
            "inject_faults": (
                {name: list(fault)
                 for name, fault in sorted(self.inject_faults.items())}
                if self.inject_faults else None
            ),
            "simulate": self.simulate,
            "backend": self.backend,
            "capture_syndromes": self.capture_syndromes,
            "verify": self.verify,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunConfig":
        """Rebuild a config serialized by :meth:`to_dict`."""
        faults = data.get("inject_faults")
        return cls(
            architecture=data.get("architecture", "casbus"),
            scheduler=data.get("scheduler", "greedy"),
            bus_width=data.get("bus_width"),
            cas_policy=data.get("cas_policy"),
            inject_faults=(
                {name: tuple(fault) for name, fault in faults.items()}
                if faults else None
            ),
            simulate=data.get("simulate"),
            backend=data.get("backend", "auto"),
            capture_syndromes=data.get("capture_syndromes", False),
            verify=data.get("verify", True),
            label=data.get("label", ""),
        )


@dataclass(frozen=True)
class SessionDetail:
    """Per-session breakdown of a simulated run."""

    label: str
    config_cycles: int
    test_cycles: int
    cores: tuple[str, ...]
    passed: bool

    @property
    def total_cycles(self) -> int:
        return self.config_cycles + self.test_cycles

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`)."""
        return {
            "label": self.label,
            "config_cycles": self.config_cycles,
            "test_cycles": self.test_cycles,
            "cores": list(self.cores),
            "passed": self.passed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SessionDetail":
        """Rebuild a session serialized by :meth:`to_dict`."""
        return cls(
            label=data["label"],
            config_cycles=data["config_cycles"],
            test_cycles=data["test_cycles"],
            cores=tuple(data["cores"]),
            passed=data["passed"],
        )


@dataclass(frozen=True)
class RunResult:
    """Uniform outcome of one experiment run.

    Attributes:
        architecture: canonical architecture name.
        scheduler: canonical scheduler name ('' when the architecture
            has a fixed timing model).
        workload: workload name (SoC name or synthetic tag).
        bus_width: pin budget the run used.
        test_cycles: test application time.
        config_cycles: configuration overhead.
        extra_pins: dedicated test pins the architecture needs.
        area_ge: access-hardware silicon cost (NAND2-equivalent).
        source: ``"simulation"`` (cycle-accurate executor) or
            ``"model"`` (abstract timing).
        passed: overall pass/fail for simulated runs, ``None`` for
            model-only runs (the model moves no bits).
        sessions: per-session detail (simulated runs).
        label: tag copied from the config.
    """

    architecture: str
    scheduler: str
    workload: str
    bus_width: int
    test_cycles: int
    config_cycles: int
    extra_pins: int
    area_ge: float
    source: str
    passed: bool | None = None
    sessions: tuple[SessionDetail, ...] = field(default=())
    label: str = ""

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles

    def to_dict(self) -> dict:
        """JSON-ready mapping (round-trips via :meth:`from_dict`).

        ``area_ge`` survives exactly: JSON floats round-trip through
        ``repr``, so a reloaded result compares equal to the original
        dataclass.
        """
        return {
            "architecture": self.architecture,
            "scheduler": self.scheduler,
            "workload": self.workload,
            "bus_width": self.bus_width,
            "test_cycles": self.test_cycles,
            "config_cycles": self.config_cycles,
            "extra_pins": self.extra_pins,
            "area_ge": self.area_ge,
            "source": self.source,
            "passed": self.passed,
            "sessions": [session.to_dict() for session in self.sessions],
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        return cls(
            architecture=data["architecture"],
            scheduler=data["scheduler"],
            workload=data["workload"],
            bus_width=data["bus_width"],
            test_cycles=data["test_cycles"],
            config_cycles=data["config_cycles"],
            extra_pins=data["extra_pins"],
            area_ge=data["area_ge"],
            source=data["source"],
            passed=data.get("passed"),
            sessions=tuple(
                SessionDetail.from_dict(session)
                for session in data.get("sessions", ())
            ),
            label=data.get("label", ""),
        )

    def metrics(self) -> dict[str, object]:
        """Flat metric mapping (sweep/table friendly)."""
        return {
            "architecture": self.architecture,
            "scheduler": self.scheduler or "-",
            "N": self.bus_width,
            "test cycles": self.test_cycles,
            "config cycles": self.config_cycles,
            "total cycles": self.total_cycles,
            "extra pins": self.extra_pins,
            "area (GE)": round(self.area_ge, 1),
            "source": self.source,
            "passed": "-" if self.passed is None else self.passed,
        }


#: Column order of :func:`results_table`.
RESULT_HEADERS: tuple[str, ...] = (
    "architecture", "scheduler", "N", "test cycles", "config cycles",
    "total cycles", "extra pins", "area (GE)", "source", "passed",
)


def results_table(results) -> tuple[list[str], list[list[object]]]:
    """``(headers, rows)`` for a batch of :class:`RunResult`.

    Feed straight into :func:`repro.analysis.tables.format_table`.
    """
    headers = list(RESULT_HEADERS)
    rows = [
        [result.metrics()[key] for key in headers] for result in results
    ]
    return headers, rows
