"""Named experiment workloads.

Benchmarks, examples and sweeps refer to workloads by string -- the
same pattern the architecture and scheduler registries use -- so one
:func:`repro.api.runner.run_matrix` call can span architectures x
schedulers x benchmark SoCs.  Every :class:`Experiment` accepts these
names directly (``Experiment("itc02-d695")``).

Built-in names:

==================  ========================================================
name                workload
==================  ========================================================
``fig1``            the paper's figure 1 SoC (simulatable)
``small``           the two-core smoke-test SoC (simulatable)
``itc02-d695``      d695-proportioned abstract core table
``itc02-g1023``     g1023-proportioned abstract core table
``itc02-p22810``    p22810-proportioned abstract core table
``itc02-h953``      h953-proportioned (BIST-heavy) abstract core table
``itc02-*-soc``     the same four, scaled down to simulatable SoCs
==================  ========================================================

Third-party code adds entries with :func:`register_workload`; the
factory may return anything :meth:`Workload.of` accepts (a
:class:`~repro.soc.soc.SocSpec`, a sequence of
:class:`~repro.soc.core.CoreTestParams`, or a prepared
:class:`Workload`).
"""

from __future__ import annotations

from repro.api.architectures import Workload
from repro.api.registry import Registry
from repro.soc.soc import SocSpec

#: The workload registry (name -> factory of a WorkloadLike).
WORKLOADS: Registry = Registry("workload")


def register_workload(name, factory, *, aliases=(), replace=False,
                      description=""):
    """Register a workload factory under ``name`` (plus ``aliases``)."""
    WORKLOADS.register(name, factory, aliases=aliases, replace=replace,
                       description=description)


def get_workload(name: str) -> Workload:
    """A normalised :class:`Workload` for a registered name.

    Bare core tables pick up the registry name (results then report
    e.g. ``itc02-d695`` instead of the generic ``cores[10]``).
    """
    import dataclasses

    raw = WORKLOADS.create(name)
    workload = Workload.of(raw)
    if not isinstance(raw, (Workload, SocSpec)):
        workload = dataclasses.replace(
            workload, name=WORKLOADS.resolve(name)
        )
    return workload


def list_workloads() -> list[str]:
    """Canonical workload names (``get_workload`` accepts each)."""
    return WORKLOADS.names()


def workload_identity(workload) -> dict:
    """Canonical JSON-ready identity of any workload-like value.

    Registered names, :class:`~repro.soc.soc.SocSpec` objects, core
    tables and prepared :class:`Workload` instances all normalise
    through :meth:`Workload.of` first, so
    ``workload_identity("itc02-d695")`` equals
    ``workload_identity(get_workload("itc02-d695"))`` -- the campaign
    layer hashes runs identically however the workload was named.
    """
    return Workload.of(workload).identity()


_ITC02_BLURBS = {
    "d695": "ten cores, small glue plus a few large scan-heavy cores",
    "g1023": "fourteen mid-sized cores with two autonomous BIST blocks",
    "p22810": "twenty-eight cores, very wide size spread (stress case)",
    "h953": "eight cores dominated by fixed-length memory-style BIST",
    "t512505": "thirty-one cores under one monster core that sets the "
               "test-time floor",
    "p93791": "one hundred and ten cores, the industrial-scale "
              "flagship the optimizer portfolio targets",
}


def _register_builtins() -> None:
    from repro.soc import itc02
    from repro.soc.library import fig1_soc, small_soc

    register_workload("fig1", fig1_soc)
    register_workload("small", small_soc)
    for name in itc02.benchmark_names():
        # A table without a blurb still registers (empty description).
        blurb = _ITC02_BLURBS.get(name)
        register_workload(
            f"itc02-{name}",
            (lambda table=name: itc02.workload(table)),
            aliases=(name,),
            description=(
                f"ITC'02-style {blurb} (abstract core table)."
                if blurb else ""
            ),
        )
        register_workload(
            f"itc02-{name}-soc",
            (lambda table=name: itc02.benchmark_soc(table)),
            aliases=(f"{name}-soc",),
            description=(
                f"ITC'02-style {blurb}, scaled to a simulatable SoC."
                if blurb else ""
            ),
        )


_register_builtins()
