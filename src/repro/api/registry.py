"""String-keyed registries for pluggable experiment components.

The experiment layer composes two kinds of plugins:

* **TAM architectures** -- CAS-BUS and the comparison baselines, all
  behind :class:`repro.api.architectures.TamArchitecture`;
* **scheduler strategies** -- session packing policies behind
  :class:`repro.api.schedulers.SchedulerStrategy`.

Both live in a :class:`Registry`: a case-insensitive name -> factory
map with aliases, raising :class:`~repro.errors.ConfigurationError`
(with close-match suggestions) for unknown names.  Third-party code can
register additional entries with :func:`register_architecture` /
:func:`register_scheduler` and every sweep, benchmark and example picks
them up by name.
"""

from __future__ import annotations

import difflib
from typing import Callable, Generic, Iterable, NamedTuple, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


class RegistryEntry(NamedTuple):
    """One registered component, as ``repro list`` detail shows it."""

    name: str
    aliases: tuple[str, ...]
    description: str


class Registry(Generic[T]):
    """A name -> factory map with aliases and helpful errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[[], T]] = {}
        self._aliases: dict[str, str] = {}
        self._descriptions: dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[[], T],
        *,
        aliases: Iterable[str] = (),
        replace: bool = False,
        description: str = "",
    ) -> None:
        """Register ``factory`` under ``name`` (plus ``aliases``).

        ``description`` is the one-line summary ``repro list`` detail
        output shows; when omitted it falls back to the first line of
        the factory's docstring.  Raises
        :class:`~repro.errors.ConfigurationError` on duplicate names
        unless ``replace=True``.
        """
        key = self._normalise(name)
        if not replace:
            if key in self._factories:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override"
                )
            if key in self._aliases:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already an alias of "
                    f"{self._aliases[key]!r}; pick another name or pass "
                    f"replace=True"
                )
        self._factories[key] = factory
        self._descriptions[key] = description
        self._aliases.pop(key, None)  # a canonical name shadows no alias
        for alias in aliases:
            alias_key = self._normalise(alias)
            if not replace:
                if alias_key in self._factories and alias_key != key:
                    raise ConfigurationError(
                        f"{self.kind} alias {alias!r} collides with the "
                        f"registered name {alias_key!r}"
                    )
                if (alias_key in self._aliases
                        and self._aliases[alias_key] != key):
                    raise ConfigurationError(
                        f"{self.kind} alias {alias!r} already points at "
                        f"{self._aliases[alias_key]!r}"
                    )
            if alias_key != key:
                self._aliases[alias_key] = key

    # -- lookup ------------------------------------------------------------

    def resolve(self, name: str) -> str:
        """The canonical key for ``name`` (following aliases)."""
        key = self._normalise(name)
        key = self._aliases.get(key, key)
        if key not in self._factories:
            known = sorted(self._factories) + sorted(self._aliases)
            hints = difflib.get_close_matches(key, known, n=3)
            hint = f"; did you mean {', '.join(map(repr, hints))}?" \
                if hints else ""
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known: "
                f"{', '.join(sorted(self._factories))}{hint}"
            )
        return key

    def create(self, name: str) -> T:
        """A fresh instance of the entry registered under ``name``."""
        return self._factories[self.resolve(name)]()

    def names(self) -> list[str]:
        """Canonical names, sorted (aliases excluded)."""
        return sorted(self._factories)

    def aliases_of(self, name: str) -> tuple[str, ...]:
        """Registered aliases of ``name``, sorted."""
        key = self.resolve(name)
        return tuple(sorted(
            alias for alias, target in self._aliases.items()
            if target == key
        ))

    def description(self, name: str) -> str:
        """One-line summary of ``name`` (registration text, or the
        first line of the factory's docstring)."""
        key = self.resolve(name)
        explicit = self._descriptions.get(key, "")
        if explicit:
            return explicit
        doc = getattr(self._factories[key], "__doc__", None) or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    def entries(self) -> list[RegistryEntry]:
        """Every component with its aliases and description, sorted."""
        return [
            RegistryEntry(
                name=name,
                aliases=self.aliases_of(name),
                description=self.description(name),
            )
            for name in self.names()
        ]

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except ConfigurationError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._factories)

    @staticmethod
    def _normalise(name: str) -> str:
        return name.strip().lower()


#: The architecture registry (populated by repro.api.architectures).
ARCHITECTURES: Registry = Registry("TAM architecture")
#: The scheduler-strategy registry (populated by repro.api.schedulers).
SCHEDULERS: Registry = Registry("scheduler strategy")


def _ensure_loaded() -> None:
    """Import the modules that populate the registries (idempotent)."""
    from repro.api import architectures, schedulers, workloads  # noqa: F401


def register_architecture(name, factory, *, aliases=(), replace=False,
                          description=""):
    """Register a :class:`TamArchitecture` factory under ``name``."""
    ARCHITECTURES.register(name, factory, aliases=aliases, replace=replace,
                           description=description)


def get_architecture(name: str):
    """A fresh :class:`TamArchitecture` registered under ``name``."""
    _ensure_loaded()
    return ARCHITECTURES.create(name)


def list_architectures() -> list[str]:
    """Canonical architecture names (``get_architecture`` accepts each)."""
    _ensure_loaded()
    return ARCHITECTURES.names()


def register_scheduler(name, factory, *, aliases=(), replace=False,
                       description=""):
    """Register a :class:`SchedulerStrategy` factory under ``name``."""
    SCHEDULERS.register(name, factory, aliases=aliases, replace=replace,
                        description=description)


def get_scheduler(name: str):
    """A fresh :class:`SchedulerStrategy` registered under ``name``."""
    _ensure_loaded()
    return SCHEDULERS.create(name)


def list_schedulers() -> list[str]:
    """Canonical scheduler-strategy names."""
    _ensure_loaded()
    return SCHEDULERS.names()
