"""``repro.api`` -- the unified experiment layer.

This package is the canonical way to drive the library.  It puts the
paper's central comparison -- CAS-BUS versus the alternative TAM
styles, under one timing model -- behind one composable surface:

* a **registry** of :class:`TamArchitecture` implementations
  (:func:`get_architecture` / :func:`list_architectures`) wrapping
  CAS-BUS and every baseline behind the same
  ``design(soc) -> schedule(config) -> evaluate()/run()`` lifecycle;
* a **registry** of :class:`SchedulerStrategy` implementations
  (:func:`get_scheduler` / :func:`list_schedulers`) over the policies
  in :mod:`repro.schedule`;
* the :class:`Experiment` builder returning uniform
  :class:`RunResult` records;
* the batch runner :func:`run_many` / :func:`run_sweep` for parallel
  design-space exploration.

Quickstart::

    from repro.api import Experiment, run_sweep, list_architectures

    result = (Experiment(soc)
              .with_architecture("casbus")
              .with_scheduler("preemptive")
              .run())

    results = run_sweep(cores, architectures=list_architectures(),
                        bus_widths=(4, 8, 16), parallel=True)
"""

from repro.api.registry import (
    ARCHITECTURES,
    SCHEDULERS,
    Registry,
    RegistryEntry,
    get_architecture,
    get_scheduler,
    list_architectures,
    list_schedulers,
    register_architecture,
    register_scheduler,
)
from repro.api.results import (
    RESULT_HEADERS,
    SCHEMA_VERSION,
    RunConfig,
    RunResult,
    SessionDetail,
    results_table,
)
from repro.api.schedulers import (
    ScheduleOutcome,
    SchedulerStrategy,
    StrategyAdapter,
)
from repro.api.architectures import (
    BASELINE_ORDER,
    DesignedTam,
    TamArchitecture,
    Workload,
)
from repro.api.experiment import Experiment
from repro.api.runner import run_many, run_matrix, run_sweep, sweep_experiments
from repro.api.workloads import (
    WORKLOADS,
    get_workload,
    list_workloads,
    register_workload,
    workload_identity,
)

__all__ = [
    "ARCHITECTURES",
    "SCHEDULERS",
    "WORKLOADS",
    "Registry",
    "RegistryEntry",
    "register_architecture",
    "register_scheduler",
    "register_workload",
    "get_architecture",
    "get_scheduler",
    "get_workload",
    "list_architectures",
    "list_schedulers",
    "list_workloads",
    "TamArchitecture",
    "SchedulerStrategy",
    "StrategyAdapter",
    "ScheduleOutcome",
    "DesignedTam",
    "Workload",
    "BASELINE_ORDER",
    "Experiment",
    "RunConfig",
    "RunResult",
    "SessionDetail",
    "RESULT_HEADERS",
    "SCHEMA_VERSION",
    "results_table",
    "workload_identity",
    "run_many",
    "run_matrix",
    "run_sweep",
    "sweep_experiments",
]
