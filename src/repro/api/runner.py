"""Batch and sweep execution on top of :class:`~repro.api.experiment.
Experiment`.

:func:`run_many` runs a batch of experiments, optionally fanned out
over worker processes with :mod:`concurrent.futures`; result order
always matches input order, so ``parallel=True`` and ``parallel=False``
are interchangeable.  :func:`sweep_experiments` builds the standard
design-space grid (architectures x bus widths x schedulers) and
:func:`run_sweep` is the one-call version benchmarks use.

This supersedes :func:`repro.analysis.sweep.sweep` for experiment
work: that helper tabulates a single callable over one parameter, while
``run_many`` understands experiments, uses every core, and returns
structured :class:`~repro.api.results.RunResult` objects
(:func:`repro.api.results.results_table` turns them into
``format_table`` input).
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.api.architectures import WorkloadLike
from repro.api.experiment import Experiment
from repro.api.registry import get_architecture, get_scheduler
from repro.api.results import RunConfig, RunResult


def _run_one(experiment: Experiment) -> RunResult:
    """Process-pool entry point (must be a module-level function)."""
    return experiment.run()


def _default_workers(count: int) -> int:
    return max(1, min(count, os.cpu_count() or 1))


def run_many(
    experiments: Iterable[Experiment],
    *,
    parallel: bool = True,
    max_workers: int | None = None,
) -> list[RunResult]:
    """Run every experiment; results in input order.

    Args:
        experiments: :class:`Experiment` instances (see
            :func:`sweep_experiments` for grid construction).
        parallel: fan out over a process pool (fork-safe workloads
            only: experiments are plain dataclasses, so this is the
            default).  Falls back to threads, then serial, if the
            platform cannot spawn processes.
        max_workers: pool size; default ``min(len, cpu_count)``.
    """
    batch = list(experiments)
    for item in batch:
        if not isinstance(item, Experiment):
            raise ConfigurationError(
                f"run_many expects Experiment instances, "
                f"got {type(item).__name__}"
            )
        # Resolve names up front: a typo fails here, before dispatch,
        # so a ConfigurationError out of a worker process can only mean
        # the worker's registry diverged (spawn platforms lose
        # dynamically registered entries) -- the thread fallback below
        # shares this process's registry and recovers that case.
        get_architecture(item.config.architecture)
        get_scheduler(item.config.scheduler)
    if not batch:
        return []
    if not parallel or len(batch) == 1:
        return [_run_one(item) for item in batch]
    workers = max_workers or _default_workers(len(batch))
    try:
        with futures.ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(_run_one, batch))
    except (OSError, PermissionError, futures.BrokenExecutor,
            ConfigurationError):
        pass  # no subprocesses here (sandbox) or divergent registry
    with futures.ThreadPoolExecutor(max_workers=workers) as executor:
        # Threads share the registry and raise experiment errors
        # directly; no further fallback so failures surface once.
        return list(executor.map(_run_one, batch))


def sweep_experiments(
    workload: WorkloadLike,
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
) -> list[Experiment]:
    """The design-space grid as concrete experiments.

    Iteration order is architectures (outer) x bus widths x schedulers
    (inner); a ``None`` bus width means the workload's own.
    """
    base = Experiment(workload, base_config)
    grid: list[Experiment] = []
    for architecture in architectures:
        for width in bus_widths:
            for scheduler in schedulers:
                experiment = (base.with_architecture(architecture)
                              .with_scheduler(scheduler))
                if width is not None:
                    experiment = experiment.with_bus_width(width)
                grid.append(experiment)
    return grid


def run_sweep(
    workload: WorkloadLike,
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> list[RunResult]:
    """One-call design-space exploration: grid + :func:`run_many`.

    ``workload`` may be a registered workload name (see
    :mod:`repro.api.workloads`), e.g. ``run_sweep("itc02-d695", ...)``.
    """
    return run_many(
        sweep_experiments(
            workload,
            architectures=architectures,
            bus_widths=bus_widths,
            schedulers=schedulers,
            base_config=base_config,
        ),
        parallel=parallel,
        max_workers=max_workers,
    )


def run_matrix(
    workloads: Sequence[WorkloadLike],
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> list[RunResult]:
    """Design-space exploration across *multiple* workloads.

    The full grid is workloads (outer) x architectures x bus widths x
    schedulers (inner), flattened into one parallel batch::

        run_matrix(["itc02-d695", "itc02-g1023", "itc02-p22810"],
                   architectures=list_architectures(),
                   bus_widths=(8, 16, 32),
                   schedulers=("greedy", "balanced-lpt"))

    Workload entries may be registered names, SoC specs, core-table
    sequences or prepared :class:`~repro.api.architectures.Workload`
    objects; results come back in grid order.
    """
    if isinstance(workloads, str):
        # A bare name is a single-workload matrix, not a sequence of
        # one-character workload names.
        workloads = [workloads]
    experiments: list[Experiment] = []
    for workload in workloads:
        experiments.extend(sweep_experiments(
            workload,
            architectures=architectures,
            bus_widths=bus_widths,
            schedulers=schedulers,
            base_config=base_config,
        ))
    return run_many(
        experiments, parallel=parallel, max_workers=max_workers
    )
