"""Batch and sweep execution on top of :class:`~repro.api.experiment.
Experiment`.

:func:`run_many` runs a batch of experiments, optionally fanned out
over worker processes with :mod:`concurrent.futures`; result order
always matches input order, so ``parallel=True`` and ``parallel=False``
are interchangeable.  Experiments that differ only in their injected
faults -- a Monte-Carlo defect sweep over one design -- are detected
up front and routed through a single vectorized simulator dispatch
(:mod:`repro.sim.batch`) instead of one process per scenario.  :func:`sweep_experiments` builds the standard
design-space grid (architectures x bus widths x schedulers) and
:func:`run_sweep` is the one-call version benchmarks use.

This supersedes :func:`repro.analysis.sweep.sweep` for experiment
work: that helper tabulates a single callable over one parameter, while
``run_many`` understands experiments, uses every core, and returns
structured :class:`~repro.api.results.RunResult` objects
(:func:`repro.api.results.results_table` turns them into
``format_table`` input).
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.spans import active as obs_active
from repro.obs.spans import capture as obs_capture
from repro.obs.spans import span as obs_span
from repro.obs.timing import stopwatch
from repro.api.architectures import WorkloadLike
from repro.api.experiment import Experiment
from repro.api.registry import get_architecture, get_scheduler
from repro.api.results import (
    SOURCE_SIMULATION,
    RunConfig,
    RunResult,
    SessionDetail,
)

#: Progress callback: ``on_result(experiment, result, cached=..., elapsed=...)``
#: invoked once per experiment as its result becomes available.
#: ``cached`` is True when the result came from a store instead of
#: being executed; ``elapsed`` is the wall-clock seconds of an executed
#: run (``None`` for cached ones).
OnResult = Callable[..., None]


def _run_one(experiment: Experiment) -> RunResult:
    """Process-pool entry point (must be a module-level function)."""
    return experiment.run()


def _timed_run(experiment: Experiment) -> tuple[RunResult, float]:
    """Pool entry point reporting per-run wall-clock seconds."""
    with stopwatch() as watch:
        result = experiment.run()
    return result, watch.seconds


def _timed_run_captured(
    experiment: Experiment,
) -> tuple[RunResult, float, dict]:
    """Pool entry point that also harvests the worker's telemetry.

    A spawned worker starts with observability disabled (the
    collector is process-global and never pickled), so when the
    parent is tracing it submits this wrapper instead: the run
    executes under a scoped collector whose picklable payload rides
    home with the result for :meth:`Collector.absorb`.
    """
    with obs_capture() as collector:
        result, elapsed = _timed_run(experiment)
        return result, elapsed, collector.payload()


def _default_workers(count: int) -> int:
    return max(1, min(count, os.cpu_count() or 1))


def _group_key(experiment: Experiment) -> Optional[str]:
    """Canonical identity minus faults: the one-dispatch group key.

    Experiments that agree on everything except ``inject_faults`` (and
    the identity-excluded ``label``) are the same compiled simulation
    with different scenario overlays, so they can share one batch
    dispatch.  Returns ``None`` for experiments the batch kernel must
    not take: a pinned scalar backend, a forbidden or unsupported
    simulation, or a non-CAS-BUS architecture.
    """
    from repro.campaign.hashing import canonical_json, experiment_identity

    config = experiment.config
    if config.simulate is False or config.backend not in ("auto", "batch"):
        return None
    if get_architecture(config.architecture).key != "casbus":
        return None
    if experiment.workload.soc is None:
        return None
    if experiment.build()._simulation_blocker(config) is not None:
        return None
    identity = experiment_identity(experiment)
    identity["config"].pop("inject_faults", None)
    # ``verify`` is identity-neutral, but one batch shares one
    # executor: keep differing verify settings in different groups.
    identity["config"]["verify"] = bool(config.verify)
    return canonical_json(identity)


def _batch_partition(
    batch: Sequence[Experiment],
) -> tuple[list[list[int]], list[int]]:
    """``(groups, rest)``: same-geometry index groups plus leftovers.

    A group needs at least two members -- a lone simulatable
    experiment gains nothing from the batch path and stays on the
    pool, where it can run beside its siblings.
    """
    groups: dict[str, list[int]] = {}
    for index, item in enumerate(batch):
        try:
            key = _group_key(item)
        except ConfigurationError:
            key = None
        if key is not None:
            groups.setdefault(key, []).append(index)
    grouped = [indices for indices in groups.values() if len(indices) >= 2]
    batched = {index for indices in grouped for index in indices}
    rest = [index for index in range(len(batch)) if index not in batched]
    return grouped, rest


def _run_batch_group(
    items: Sequence[Experiment],
) -> Optional[list[tuple[RunResult, float]]]:
    """One simulator dispatch for a same-geometry fault sweep.

    Every item shares its workload, architecture, scheduler and
    backend -- only the injected faults (and labels) differ -- so the
    CAS hardware, the executable plan and the compiled programs are
    built once and the scenarios execute through
    :meth:`repro.sim.session.SessionExecutor.run_batch`.  Returns one
    ``(result, seconds)`` per item with the group's wall clock split
    evenly, or ``None`` when the batch path is unavailable and the
    items should run individually.
    """
    from repro.core.tam import CasBusTamDesign
    from repro.sim.session import SessionExecutor
    from repro.sim.system import build_system

    leader = items[0]
    config = leader.config
    soc = leader.workload.soc
    assert soc is not None
    watch = stopwatch()
    try:
        facade = CasBusTamDesign.for_soc(
            soc,
            policy="all" if config.cas_policy is None
            else config.cas_policy,
        )
        plan = facade.executable_plan()
        executor = SessionExecutor(
            build_system(soc),
            backend=config.backend,
            capture_syndromes=config.capture_syndromes,
            verify=config.verify,
        )
        programs = executor.run_batch(
            plan, [item.config.inject_faults for item in items]
        )
    except (ImportError, ConfigurationError):
        return None
    elapsed = watch.elapsed / len(items)
    architecture = get_architecture(config.architecture).key
    scheduler = get_scheduler(config.scheduler).name
    executed: list[tuple[RunResult, float]] = []
    for item, program in zip(items, programs):
        sessions = tuple(
            SessionDetail(
                label=session.label,
                config_cycles=session.config_cycles,
                test_cycles=session.test_cycles,
                cores=tuple(r.name for r in session.core_results),
                passed=session.passed,
            )
            for session in program.sessions
        )
        executed.append((
            RunResult(
                architecture=architecture,
                scheduler=scheduler,
                workload=item.workload.name,
                bus_width=soc.bus_width,
                test_cycles=program.test_cycles,
                config_cycles=program.config_cycles,
                extra_pins=soc.bus_width,
                area_ge=facade.total_cas_ge,
                source=SOURCE_SIMULATION,
                passed=program.passed,
                sessions=sessions,
                label=item.config.label,
            ),
            elapsed,
        ))
    return executed


def _stream(
    batch: Sequence[Experiment],
    serial: bool,
    workers: int,
) -> Iterator[tuple[int, RunResult, float]]:
    """Yield ``(index, result, seconds)`` in *completion* order.

    Same-geometry fault sweeps are peeled off first and executed one
    group per simulator dispatch (see :func:`_run_batch_group`); the
    leftovers run on the historical pool path below.
    """
    grouped, rest = _batch_partition(batch)
    for indices in grouped:
        executed = _run_batch_group([batch[index] for index in indices])
        if executed is None:
            rest.extend(indices)
            continue
        for index, (result, elapsed) in zip(indices, executed):
            yield index, result, elapsed
    if not rest:
        return
    rest.sort()
    subset = [batch[index] for index in rest]
    for position, result, elapsed in _stream_pool(
            subset, serial or len(subset) == 1, workers):
        yield rest[position], result, elapsed


def _stream_pool(
    batch: Sequence[Experiment],
    serial: bool,
    workers: int,
) -> Iterator[tuple[int, RunResult, float]]:
    """The per-experiment pool: one :meth:`Experiment.run` per item.

    Results are yielded the moment each run finishes -- not in input
    order -- so a store-aware caller can persist every completed run
    even while a slow sibling is still executing: an interrupted batch
    keeps everything finished so far.  The pool strategy matches the
    historical ``run_many`` behaviour: process pool first, falling back
    to threads when the platform cannot spawn processes or a spawn
    worker's registry diverged.
    """
    if serial:
        for index, item in enumerate(batch):
            result, elapsed = _timed_run(item)
            yield index, result, elapsed
        return
    yielded: set[int] = set()
    # When the parent is tracing, workers run under a scoped collector
    # and ship their spans/metrics home beside the result; the thread
    # fallback below shares this process's collector and needs nothing.
    collector = obs_active()
    entry = _timed_run if collector is None else _timed_run_captured
    try:
        with futures.ProcessPoolExecutor(max_workers=workers) as executor:
            submitted = {
                executor.submit(entry, item): index
                for index, item in enumerate(batch)
            }
            broken = False
            for future in futures.as_completed(submitted):
                index = submitted[future]
                try:
                    outcome = future.result()
                except (OSError, PermissionError, futures.BrokenExecutor,
                        ConfigurationError):
                    # No subprocesses here (sandbox) or divergent
                    # registry (spawn platforms lose dynamically
                    # registered entries): finish on threads below.
                    broken = True
                    executor.shutdown(wait=False, cancel_futures=True)
                    break
                if collector is None:
                    result, elapsed = outcome
                else:
                    result, elapsed, payload = outcome
                    collector.absorb(payload)
                yielded.add(index)
                yield index, result, elapsed
            if not broken:
                return
    except (OSError, PermissionError, futures.BrokenExecutor):
        pass  # the process pool could not start at all
    remaining = [i for i in range(len(batch)) if i not in yielded]
    with futures.ThreadPoolExecutor(max_workers=workers) as executor:
        # Threads share the registry and raise experiment errors
        # directly; no further fallback so failures surface once.
        # Only the experiments not already yielded re-run.
        mapped = executor.map(_timed_run, [batch[i] for i in remaining])
        for index, (result, elapsed) in zip(remaining, mapped):
            yield index, result, elapsed


def run_many(
    experiments: Iterable[Experiment],
    *,
    parallel: bool = True,
    max_workers: int | None = None,
    store=None,
    rerun: bool = False,
    on_result: Optional[OnResult] = None,
) -> list[RunResult]:
    """Run every experiment; results in input order.

    Args:
        experiments: :class:`Experiment` instances (see
            :func:`sweep_experiments` for grid construction).
        parallel: fan out over a process pool (fork-safe workloads
            only: experiments are plain dataclasses, so this is the
            default).  Falls back to threads, then serial, if the
            platform cannot spawn processes.
        max_workers: pool size; default ``min(len, cpu_count)``.
        store: a :class:`~repro.campaign.backend.StoreBackend` (the
            JSONL :class:`~repro.campaign.store.CampaignStore` or the
            indexed :class:`~repro.campaign.sqlite.SqliteStore`).  When
            given, experiments whose config hash already has a stored
            result are *not executed* -- the stored result is returned
            in their place -- and every freshly executed result is
            durably appended to the store the moment it completes, so
            an interrupted batch resumes where it died.
        rerun: with a store, ignore existing records and execute
            everything; new records supersede old ones on read.
        on_result: progress callback, called once per experiment as
            ``on_result(experiment, result, cached=..., elapsed=...)``.
    """
    batch = list(experiments)
    for item in batch:
        if not isinstance(item, Experiment):
            raise ConfigurationError(
                f"run_many expects Experiment instances, "
                f"got {type(item).__name__}"
            )
        # Resolve names up front: a typo fails here, before dispatch,
        # so a ConfigurationError out of a worker process can only mean
        # the worker's registry diverged -- the thread fallback in
        # ``_stream`` shares this process's registry and recovers it.
        get_architecture(item.config.architecture)
        get_scheduler(item.config.scheduler)
    if not batch:
        return []
    workers = max_workers or _default_workers(len(batch))
    serial = not parallel or len(batch) == 1
    if store is None:
        results: list[RunResult] = [None] * len(batch)  # type: ignore[list-item]
        for index, result, elapsed in _stream(batch, serial, workers):
            results[index] = result
            if on_result is not None:
                on_result(batch[index], result, cached=False,
                          elapsed=elapsed)
        return results
    return _run_with_store(
        batch, store, serial=serial, workers=workers, rerun=rerun,
        on_result=on_result,
    )


def _run_with_store(
    batch: Sequence[Experiment],
    store,
    *,
    serial: bool,
    workers: int,
    rerun: bool,
    on_result: Optional[OnResult],
) -> list[RunResult]:
    """The store-aware execution path: skip, execute, persist.

    Duplicate configs *within* the batch execute once; the survivors
    reuse the first copy's result, exactly as a store hit would.
    """
    from repro.campaign.hashing import config_hash
    from repro.campaign.store import make_record
    from repro.verify import verify_record

    hashes = [config_hash(item) for item in batch]
    # Ask the store only about this batch's hashes: resuming a small
    # shard against a large shared store must not load (let alone
    # reconstruct) every record it contains.  On the indexed SQLite
    # backend this is O(batch); on JSONL it is the one full scan the
    # format always costs.
    stored = {} if rerun else store.lookup(hashes)
    results: list[RunResult] = [None] * len(batch)  # type: ignore[list-item]
    pending: list[int] = []
    leaders: dict[str, int] = {}
    followers: dict[int, int] = {}
    for index, item_hash in enumerate(hashes):
        if item_hash in stored:
            results[index] = RunResult.from_dict(
                stored[item_hash]["result"]
            )
            if on_result is not None:
                on_result(batch[index], results[index], cached=True,
                          elapsed=None)
        elif item_hash in leaders:
            followers[index] = leaders[item_hash]
        else:
            leaders[item_hash] = index
            pending.append(index)
    subset = [batch[index] for index in pending]
    for position, result, elapsed in _stream(
            subset, serial or len(subset) == 1, workers):
        index = pending[position]
        record = make_record(batch[index], result,
                             config_hash=hashes[index], elapsed_s=elapsed)
        if getattr(batch[index].config, "verify", True):
            # A record that fails its own serialization contract must
            # never enter the store: fail loudly before the append.
            verify_record(record).raise_if_failed(hashes[index][:10])
        with obs_span("store.append", config_hash=hashes[index][:10]):
            store.append(record, replace=rerun)
        results[index] = result
        if on_result is not None:
            on_result(batch[index], result, cached=False, elapsed=elapsed)
    for index, leader in followers.items():
        results[index] = results[leader]
        if on_result is not None:
            on_result(batch[index], results[index], cached=True,
                      elapsed=None)
    return results


def sweep_experiments(
    workload: WorkloadLike,
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
) -> list[Experiment]:
    """The design-space grid as concrete experiments.

    Iteration order is architectures (outer) x bus widths x schedulers
    (inner); a ``None`` bus width means the workload's own.
    """
    base = Experiment(workload, base_config)
    grid: list[Experiment] = []
    for architecture in architectures:
        for width in bus_widths:
            for scheduler in schedulers:
                experiment = (base.with_architecture(architecture)
                              .with_scheduler(scheduler))
                if width is not None:
                    experiment = experiment.with_bus_width(width)
                grid.append(experiment)
    return grid


def run_sweep(
    workload: WorkloadLike,
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    store=None,
    rerun: bool = False,
    on_result: Optional[OnResult] = None,
) -> list[RunResult]:
    """One-call design-space exploration: grid + :func:`run_many`.

    ``workload`` may be a registered workload name (see
    :mod:`repro.api.workloads`), e.g. ``run_sweep("itc02-d695", ...)``.
    ``store``/``rerun``/``on_result`` behave as in :func:`run_many`.
    """
    return run_many(
        sweep_experiments(
            workload,
            architectures=architectures,
            bus_widths=bus_widths,
            schedulers=schedulers,
            base_config=base_config,
        ),
        parallel=parallel,
        max_workers=max_workers,
        store=store,
        rerun=rerun,
        on_result=on_result,
    )


def run_matrix(
    workloads: Sequence[WorkloadLike],
    *,
    architectures: Sequence[str] = ("casbus",),
    bus_widths: Sequence[int | None] = (None,),
    schedulers: Sequence[str] = ("greedy",),
    base_config: RunConfig | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
    store=None,
    rerun: bool = False,
    on_result: Optional[OnResult] = None,
) -> list[RunResult]:
    """Design-space exploration across *multiple* workloads.

    The full grid is workloads (outer) x architectures x bus widths x
    schedulers (inner), flattened into one parallel batch::

        run_matrix(["itc02-d695", "itc02-g1023", "itc02-p22810"],
                   architectures=list_architectures(),
                   bus_widths=(8, 16, 32),
                   schedulers=("greedy", "balanced-lpt"))

    Workload entries may be registered names, SoC specs, core-table
    sequences or prepared :class:`~repro.api.architectures.Workload`
    objects; results come back in grid order.
    """
    if isinstance(workloads, str):
        # A bare name is a single-workload matrix, not a sequence of
        # one-character workload names.
        workloads = [workloads]
    experiments: list[Experiment] = []
    for workload in workloads:
        experiments.extend(sweep_experiments(
            workload,
            architectures=architectures,
            bus_widths=bus_widths,
            schedulers=schedulers,
            base_config=base_config,
        ))
    return run_many(
        experiments, parallel=parallel, max_workers=max_workers,
        store=store, rerun=rerun, on_result=on_result,
    )
