"""Scheduler strategies: one pluggable interface over the policies in
:mod:`repro.schedule`.

Every strategy is the same :class:`StrategyAdapter` wrapped around one
schedule function, so experiments swap policies by name and adding a
policy is one entry in :data:`_STRATEGY_SPECS`:

======================  =================================================
name                    algorithm
======================  =================================================
``greedy``              :func:`repro.schedule.scheduler.schedule_greedy`
``exhaustive``          :func:`repro.schedule.scheduler.schedule_exhaustive`
``balanced-lpt``        LPT static partition
                        (:func:`repro.schedule.reconfig.static_partition`)
``preemptive``          :func:`repro.schedule.preemptive.schedule_preemptive`
``reconfig``            best of session/preemptive reconfiguration
                        (:func:`repro.schedule.reconfig.compare_reconfiguration`)
``optimize-bnb``        exact width/session co-optimisation
                        (:func:`repro.schedule.optimize.optimize_bnb`)
``optimize-anneal``     annealed width/session co-optimisation
                        (:func:`repro.schedule.optimize.optimize_anneal`)
``optimize-portfolio``  parallel multi-start portfolio
                        (:func:`repro.schedule.portfolio.optimize_portfolio`)
======================  =================================================

Only ``greedy`` produces schedules the cycle-accurate
:class:`~repro.sim.session.SessionExecutor` can execute (a CAS in TEST
mode switches exactly P wires, so executable plans are rigid); the
others model design-time alternatives in the abstract timing model.
The two ``optimize-*`` strategies carry their full
:class:`~repro.schedule.optimize.OptimizeOutcome` (Pareto front
included) as the outcome's ``detail``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import partial
from typing import Callable, Sequence

from repro.soc.core import CoreTestParams
from repro.schedule.optimize import optimize_anneal, optimize_bnb
from repro.schedule.preemptive import schedule_preemptive
from repro.schedule.reconfig import compare_reconfiguration, static_partition
from repro.schedule.scheduler import (
    schedule_exhaustive,
    schedule_greedy,
    session_config_cost,
)
from repro.api.registry import register_scheduler


@dataclass(frozen=True)
class ScheduleOutcome:
    """Uniform result of one scheduling strategy on one workload.

    Attributes:
        strategy: the strategy's registry name.
        bus_width: the pin budget scheduled against.
        test_cycles: test application time.
        config_cycles: configuration/reconfiguration overhead.
        detail: the strategy-specific schedule object
            (:class:`~repro.schedule.model.Schedule`,
            :class:`~repro.schedule.preemptive.PreemptiveSchedule`,
            :class:`~repro.schedule.reconfig.ReconfigComparison`,
            :class:`~repro.schedule.reconfig.StaticPlan`, or
            :class:`~repro.schedule.optimize.OptimizeOutcome`).
    """

    strategy: str
    bus_width: int
    test_cycles: int
    config_cycles: int
    detail: object = None

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles

    def describe(self) -> str:
        if hasattr(self.detail, "describe"):
            return self.detail.describe()
        return (f"{self.strategy} on N={self.bus_width}: "
                f"{self.test_cycles} test + {self.config_cycles} config "
                f"cycles")


class SchedulerStrategy(abc.ABC):
    """One test-scheduling policy over abstract core parameters."""

    name: str = "strategy"
    #: Whether the strategy's schedules map onto the rigid session plans
    #: the cycle-accurate executor runs (greedy exact-wires packing).
    executable: bool = False

    @abc.abstractmethod
    def schedule(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
        *,
        charge_config: bool = True,
        cas_policy: str | None = "all",
    ) -> ScheduleOutcome:
        """Schedule ``cores`` onto ``bus_width`` wires."""

    def _outcome(self, bus_width, test, config, detail) -> ScheduleOutcome:
        return ScheduleOutcome(
            strategy=self.name,
            bus_width=bus_width,
            test_cycles=test,
            config_cycles=config,
            detail=detail,
        )


#: A schedule function: ``(cores, bus_width, charge_config=...,
#: cas_policy=..., **options) -> (test_cycles, config_cycles, detail)``.
ScheduleFn = Callable[..., "tuple[int, int, object]"]


class StrategyAdapter(SchedulerStrategy):
    """The one generic adapter: any schedule function, one interface.

    Replaces the five near-identical per-policy wrapper classes;
    strategy-specific keyword options (``exact_wires`` for greedy,
    ``widths``/``seed``/``iterations`` for the optimisers) pass
    through ``schedule`` untouched.
    """

    def __init__(self, name: str, fn: ScheduleFn, *,
                 executable: bool = False) -> None:
        self.name = name
        self.executable = executable
        self._fn = fn

    def schedule(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
        *,
        charge_config: bool = True,
        cas_policy: str | None = "all",
        **options,
    ) -> ScheduleOutcome:
        test, config, detail = self._fn(
            cores, bus_width,
            charge_config=charge_config, cas_policy=cas_policy,
            **options,
        )
        if not charge_config:
            config = 0
        return self._outcome(bus_width, test, config, detail)


# -- schedule functions -------------------------------------------------------


def _run_greedy(cores, bus_width, *, charge_config, cas_policy,
                exact_wires=False):
    result = schedule_greedy(
        cores, bus_width, charge_config=charge_config,
        exact_wires=exact_wires, cas_policy=cas_policy,
    )
    return result.test_cycles, result.config_cycles_total, result


def _run_exhaustive(cores, bus_width, *, charge_config, cas_policy):
    result = schedule_exhaustive(
        cores, bus_width, charge_config=charge_config,
        cas_policy=cas_policy,
    )
    return result.test_cycles, result.config_cycles_total, result


def _run_balanced_lpt(cores, bus_width, *, charge_config, cas_policy):
    plan = static_partition(cores, bus_width)
    config = 0
    if charge_config and cores:
        # One all-parallel session: every core's WIR is spliced in the
        # single configuration pass.
        config = session_config_cost(cores, bus_width, cores, cas_policy)
    return plan.total_cycles, config, plan


def _run_preemptive(cores, bus_width, *, charge_config, cas_policy):
    result = schedule_preemptive(
        cores, bus_width, charge_config=charge_config,
        cas_policy=cas_policy,
    )
    return result.test_cycles, result.config_cycles_total, result


def _run_reconfig(cores, bus_width, *, charge_config, cas_policy):
    comparison = compare_reconfiguration(cores, bus_width,
                                         cas_policy=cas_policy)
    best = min(
        (comparison.reconfigured, comparison.preemptive),
        key=lambda schedule: schedule.total_cycles,
    )
    return best.test_cycles, best.config_cycles_total, comparison


def _run_optimize_bnb(cores, bus_width, *, charge_config, cas_policy,
                      widths=None):
    outcome = optimize_bnb(
        cores, bus_width, widths=widths,
        charge_config=charge_config, cas_policy=cas_policy,
    )
    return outcome.test_cycles, outcome.config_cycles, outcome


def _run_optimize_anneal(cores, bus_width, *, charge_config, cas_policy,
                         widths=None, seed=0, iterations=None,
                         restarts=1):
    outcome = optimize_anneal(
        cores, bus_width, widths=widths,
        charge_config=charge_config, cas_policy=cas_policy,
        seed=seed, iterations=iterations, restarts=restarts,
    )
    return outcome.test_cycles, outcome.config_cycles, outcome


def _run_optimize_portfolio(cores, bus_width, *, charge_config,
                            cas_policy, widths=None, seed=0, spec=None,
                            jobs=1, budget=None, progress=None):
    from repro.schedule.portfolio import optimize_portfolio

    outcome = optimize_portfolio(
        cores, bus_width, widths=widths,
        charge_config=charge_config, cas_policy=cas_policy,
        seed=seed, spec=spec, jobs=jobs, budget=budget,
        progress=progress,
    )
    return outcome.test_cycles, outcome.config_cycles, outcome


# -- registration -------------------------------------------------------------

#: name -> (schedule function, executable, aliases, description).
_STRATEGY_SPECS: "dict[str, tuple[ScheduleFn, bool, tuple, str]]" = {
    "greedy": (
        _run_greedy, True, ("session", "default"),
        "Greedy session packing with a widening improvement pass.",
    ),
    "exhaustive": (
        _run_exhaustive, False, ("optimal",),
        "Optimal enumeration over session partitions (small instances).",
    ),
    "balanced-lpt": (
        _run_balanced_lpt, False, ("lpt", "static"),
        "One-shot LPT load balancing: a single all-parallel session.",
    ),
    "preemptive": (
        _run_preemptive, False, ("staircase",),
        "Staircase scheduling: reallocate wires whenever a core finishes.",
    ),
    "reconfig": (
        _run_reconfig, False, ("best-reconfig",),
        "Best reconfiguration granularity: session-based or preemptive.",
    ),
    "optimize-bnb": (
        _run_optimize_bnb, False, ("bnb", "branch-and-bound"),
        "Exact width/session co-optimisation with a Pareto front "
        "(small SoCs).",
    ),
    "optimize-anneal": (
        _run_optimize_anneal, False, ("anneal",),
        "Annealed width/session co-optimisation with a Pareto front "
        "(ITC'02 scale).",
    ),
    "optimize-portfolio": (
        _run_optimize_portfolio, False, ("portfolio",),
        "Parallel multi-start portfolio (anneal ladder, genetic, LNS) "
        "over a shared evaluation cache; jobs-independent results.",
    ),
}

for _name, (_fn, _executable, _aliases, _description) in \
        _STRATEGY_SPECS.items():
    register_scheduler(
        _name,
        partial(StrategyAdapter, _name, _fn, executable=_executable),
        aliases=_aliases,
        description=_description,
    )
