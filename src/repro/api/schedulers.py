"""Scheduler strategies: one pluggable interface over the policies in
:mod:`repro.schedule`.

Each strategy wraps one of the library's scheduling algorithms behind
:class:`SchedulerStrategy` and returns a uniform
:class:`ScheduleOutcome`, so experiments swap policies by name:

======================  =================================================
name                    algorithm
======================  =================================================
``greedy``              :func:`repro.schedule.scheduler.schedule_greedy`
``exhaustive``          :func:`repro.schedule.scheduler.schedule_exhaustive`
``balanced-lpt``        LPT static partition
                        (:func:`repro.schedule.reconfig.static_partition`)
``preemptive``          :func:`repro.schedule.preemptive.schedule_preemptive`
``reconfig``            best of session/preemptive reconfiguration
                        (:func:`repro.schedule.reconfig.compare_reconfiguration`)
======================  =================================================

Only ``greedy`` produces schedules the cycle-accurate
:class:`~repro.sim.session.SessionExecutor` can execute (a CAS in TEST
mode switches exactly P wires, so executable plans are rigid); the
others model design-time alternatives in the abstract timing model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.soc.core import CoreTestParams
from repro.schedule.preemptive import schedule_preemptive
from repro.schedule.reconfig import compare_reconfiguration, static_partition
from repro.schedule.scheduler import (
    schedule_exhaustive,
    schedule_greedy,
    session_config_cost,
)
from repro.api.registry import register_scheduler


@dataclass(frozen=True)
class ScheduleOutcome:
    """Uniform result of one scheduling strategy on one workload.

    Attributes:
        strategy: the strategy's registry name.
        bus_width: the pin budget scheduled against.
        test_cycles: test application time.
        config_cycles: configuration/reconfiguration overhead.
        detail: the strategy-specific schedule object
            (:class:`~repro.schedule.scheduler.Schedule`,
            :class:`~repro.schedule.preemptive.PreemptiveSchedule`,
            :class:`~repro.schedule.reconfig.ReconfigComparison`, or
            :class:`~repro.schedule.reconfig.StaticPlan`).
    """

    strategy: str
    bus_width: int
    test_cycles: int
    config_cycles: int
    detail: object = None

    @property
    def total_cycles(self) -> int:
        return self.test_cycles + self.config_cycles

    def describe(self) -> str:
        if hasattr(self.detail, "describe"):
            return self.detail.describe()
        return (f"{self.strategy} on N={self.bus_width}: "
                f"{self.test_cycles} test + {self.config_cycles} config "
                f"cycles")


class SchedulerStrategy(abc.ABC):
    """One test-scheduling policy over abstract core parameters."""

    name: str = "strategy"
    #: Whether the strategy's schedules map onto the rigid session plans
    #: the cycle-accurate executor runs (greedy exact-wires packing).
    executable: bool = False

    @abc.abstractmethod
    def schedule(
        self,
        cores: Sequence[CoreTestParams],
        bus_width: int,
        *,
        charge_config: bool = True,
        cas_policy: str | None = "all",
    ) -> ScheduleOutcome:
        """Schedule ``cores`` onto ``bus_width`` wires."""

    def _outcome(self, bus_width, test, config, detail) -> ScheduleOutcome:
        return ScheduleOutcome(
            strategy=self.name,
            bus_width=bus_width,
            test_cycles=test,
            config_cycles=config,
            detail=detail,
        )


class GreedyStrategy(SchedulerStrategy):
    """Greedy session packing with the widening improvement pass."""

    name = "greedy"
    executable = True

    def schedule(self, cores, bus_width, *, charge_config=True,
                 cas_policy="all", exact_wires=False) -> ScheduleOutcome:
        result = schedule_greedy(
            cores, bus_width, charge_config=charge_config,
            exact_wires=exact_wires, cas_policy=cas_policy,
        )
        return self._outcome(bus_width, result.test_cycles,
                             result.config_cycles_total, result)


class ExhaustiveStrategy(SchedulerStrategy):
    """Optimal enumeration over session partitions (small instances)."""

    name = "exhaustive"

    def schedule(self, cores, bus_width, *, charge_config=True,
                 cas_policy="all") -> ScheduleOutcome:
        result = schedule_exhaustive(
            cores, bus_width, charge_config=charge_config
        )
        return self._outcome(bus_width, result.test_cycles,
                             result.config_cycles_total, result)


class BalancedLptStrategy(SchedulerStrategy):
    """One-shot LPT load balancing: a single all-parallel session.

    Cores are packed onto wire groups by longest-processing-time
    (exactly the partition a non-reconfigurable designer freezes at
    tape-out); the CAS-BUS realises it with one two-stage configuration
    pass, after which groups run in parallel and cores inside a group
    serialise.
    """

    name = "balanced-lpt"

    def schedule(self, cores, bus_width, *, charge_config=True,
                 cas_policy="all") -> ScheduleOutcome:
        plan = static_partition(cores, bus_width)
        config = 0
        if charge_config and cores:
            # One all-parallel session: every core's WIR is spliced in
            # the single configuration pass.
            config = session_config_cost(cores, bus_width, cores,
                                         cas_policy)
        return self._outcome(bus_width, plan.total_cycles, config, plan)


class PreemptiveStrategy(SchedulerStrategy):
    """Staircase scheduling: reallocate wires whenever a core finishes."""

    name = "preemptive"

    def schedule(self, cores, bus_width, *, charge_config=True,
                 cas_policy="all") -> ScheduleOutcome:
        result = schedule_preemptive(
            cores, bus_width, charge_config=charge_config,
            cas_policy=cas_policy,
        )
        return self._outcome(bus_width, result.test_cycles,
                             result.config_cycles_total, result)


class ReconfigStrategy(SchedulerStrategy):
    """Best reconfiguration granularity: session-based or preemptive.

    Runs the section 4 comparison and reports whichever granularity
    wins on total cycles, keeping the full
    :class:`~repro.schedule.reconfig.ReconfigComparison` as detail.
    """

    name = "reconfig"

    def schedule(self, cores, bus_width, *, charge_config=True,
                 cas_policy="all") -> ScheduleOutcome:
        comparison = compare_reconfiguration(cores, bus_width,
                                             cas_policy=cas_policy)
        best = min(
            (comparison.reconfigured, comparison.preemptive),
            key=lambda schedule: schedule.total_cycles,
        )
        test, config = best.test_cycles, best.config_cycles_total
        if not charge_config:
            config = 0
        return self._outcome(bus_width, test, config, comparison)


register_scheduler("greedy", GreedyStrategy, aliases=("session", "default"))
register_scheduler("exhaustive", ExhaustiveStrategy, aliases=("optimal",))
register_scheduler("balanced-lpt", BalancedLptStrategy,
                   aliases=("lpt", "static"))
register_scheduler("preemptive", PreemptiveStrategy,
                   aliases=("staircase",))
register_scheduler("reconfig", ReconfigStrategy,
                   aliases=("best-reconfig",))
