"""The :class:`Experiment` builder: one fluent entry point for every
architecture / scheduler / workload combination.

    from repro.api import Experiment
    from repro.soc.library import small_soc

    result = (Experiment(small_soc())
              .with_architecture("casbus")
              .with_scheduler("greedy")
              .run())
    assert result.passed and result.source == "simulation"

The builder is immutable: every ``with_*`` call returns a new
:class:`Experiment`, so partially configured experiments fan out into
sweeps without aliasing (:func:`repro.api.runner.run_many` exploits
this to ship experiments across worker processes).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.api.architectures import DesignedTam, Workload, WorkloadLike
from repro.api.registry import (
    ARCHITECTURES,
    SCHEDULERS,
    get_architecture,
)
from repro.api.results import RunConfig, RunResult
from repro.api.schedulers import ScheduleOutcome


class Experiment:
    """One composable experiment: workload + architecture + scheduler.

    Args:
        workload: a :class:`~repro.soc.soc.SocSpec`, a sequence of
            :class:`~repro.soc.core.CoreTestParams`, or a prepared
            :class:`~repro.api.architectures.Workload`.
        config: a complete :class:`~repro.api.results.RunConfig`
            (defaults apply when omitted).
    """

    def __init__(self, workload: WorkloadLike,
                 config: RunConfig | None = None) -> None:
        self.workload = Workload.of(workload)
        self.config = config or RunConfig()

    # -- builder (immutable: each call returns a new Experiment) -----------

    def _evolve(self, **changes) -> "Experiment":
        return Experiment(self.workload, self.config.evolve(**changes))

    def with_architecture(self, name: str) -> "Experiment":
        """Select the TAM architecture by registry name (eager check)."""
        from repro.api.registry import _ensure_loaded

        _ensure_loaded()
        return self._evolve(architecture=ARCHITECTURES.resolve(name))

    def with_scheduler(self, name: str) -> "Experiment":
        """Select the scheduler strategy by registry name (eager check)."""
        from repro.api.registry import _ensure_loaded

        _ensure_loaded()
        return self._evolve(scheduler=SCHEDULERS.resolve(name))

    def with_bus_width(self, bus_width: int) -> "Experiment":
        """Override the pin budget N."""
        return self._evolve(bus_width=bus_width)

    def with_policy(self, cas_policy: str | None) -> "Experiment":
        """Pin the CAS scheme-enumeration policy (e.g. sweeps)."""
        return self._evolve(cas_policy=cas_policy)

    def with_faults(
        self, faults: Mapping[str, tuple] | None
    ) -> "Experiment":
        """Inject faults (forces cycle-accurate simulation)."""
        return self._evolve(
            inject_faults=dict(faults) if faults else None
        )

    def with_backend(self, backend: str) -> "Experiment":
        """Pin the simulation engine (``auto``/``kernel``/``legacy``)."""
        from repro.sim.session import BACKENDS

        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; known: {', '.join(BACKENDS)}"
            )
        return self._evolve(backend=backend)

    def with_syndromes(
        self, capture_syndromes: bool = True
    ) -> "Experiment":
        """Record bit-level failure syndromes on simulated results."""
        return self._evolve(capture_syndromes=capture_syndromes)

    def with_verify(self, verify: bool = True) -> "Experiment":
        """Toggle static verification at the fail-fast boundaries.

        On by default; identity-neutral, so flipping it never changes
        :meth:`config_hash` (see :mod:`repro.verify`).
        """
        return self._evolve(verify=verify)

    def with_label(self, label: str) -> "Experiment":
        """Tag the result."""
        return self._evolve(label=label)

    def simulated(self, simulate: bool | None = True) -> "Experiment":
        """Force (``True``) or forbid (``False``) simulation."""
        return self._evolve(simulate=simulate)

    # -- identity ----------------------------------------------------------

    def identity(self) -> dict:
        """Canonical JSON-ready identity: workload + effective config.

        Registry aliases resolve to canonical names and the bus width
        resolves against the workload, so ``cas-bus``/``casbus`` or an
        explicit width equal to the workload's own cannot produce
        distinct identities.  The free-form ``label`` is excluded: it
        tags output, it does not change the run.
        """
        from repro.campaign.hashing import experiment_identity

        return experiment_identity(self)

    def config_hash(self) -> str:
        """Stable content hash of :meth:`identity` (hex SHA-256).

        Equal across processes and Python versions; campaign stores
        key completed runs by it (see :mod:`repro.campaign`).
        """
        from repro.campaign.hashing import config_hash

        return config_hash(self)

    # -- lifecycle ---------------------------------------------------------

    def build(self) -> DesignedTam:
        """Lifecycle step 1: the architecture bound to the workload."""
        return get_architecture(self.config.architecture).design(
            self.workload
        )

    def schedule(self) -> ScheduleOutcome | None:
        """Lifecycle step 2: the strategy's schedule (or ``None``)."""
        return self.build().schedule(self.config)

    def evaluate(self) -> RunResult:
        """Abstract-timing-model result; never simulates."""
        return self.build().evaluate(self.config)

    def run(self) -> RunResult:
        """Cycle-accurate simulation when supported, model otherwise."""
        return self.build().run(self.config)

    def diagnose(self, scenario=None, *, scenario_seed: int = 0):
        """Inject a defect and run the full adaptive diagnosis flow.

        Args:
            scenario: a :class:`~repro.diagnose.inject.DefectScenario`
                (``None`` draws a seeded stuck-at scenario).
            scenario_seed: seed for the drawn scenario when
                ``scenario`` is ``None``.

        Returns the
        :class:`~repro.diagnose.engine.DiagnosisResult`.  Requires the
        CAS-BUS architecture and a simulatable
        :class:`~repro.soc.soc.SocSpec` workload -- diagnosis *is* the
        reconfigurability story, so no baseline architecture supports
        it.
        """
        from repro.api.registry import ARCHITECTURES, _ensure_loaded
        from repro.diagnose.engine import DiagnosisEngine
        from repro.diagnose.inject import random_scenario

        _ensure_loaded()
        architecture = ARCHITECTURES.resolve(self.config.architecture)
        if architecture != "casbus":
            raise ConfigurationError(
                f"diagnosis needs the reconfigurable CAS-BUS, "
                f"architecture is {architecture!r}"
            )
        soc = self.workload.soc
        if soc is None:
            raise ConfigurationError(
                f"workload {self.workload.name!r} is abstract core "
                f"parameters; diagnosis needs a simulatable SocSpec"
            )
        if (self.config.bus_width is not None
                and self.config.bus_width != soc.bus_width):
            raise ConfigurationError(
                f"bus width override {self.config.bus_width} differs "
                f"from the SoC's physical width {soc.bus_width}"
            )
        if scenario is None:
            scenario = random_scenario(soc, scenario_seed)
        engine = DiagnosisEngine(
            soc,
            scenario,
            backend=self.config.backend,
            cas_policy=(
                "all" if self.config.cas_policy is None
                else self.config.cas_policy
            ),
        )
        return engine.run()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Experiment({self.workload.name!r}, "
                f"architecture={self.config.architecture!r}, "
                f"scheduler={self.config.scheduler!r}, "
                f"N={self.config.bus_width or self.workload.bus_width})")
