"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work with the
stock setuptools; all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
