"""Store backends: JSONL for small campaigns, SQLite for huge ones.

Every campaign store satisfies one contract
(:class:`repro.campaign.StoreBackend`): append-only records keyed by
config hash, last record wins, deterministic merges.  The default
JSONL backend keeps that contract in a flat greppable file; the SQLite
backend keeps it behind indexes, so resume-skip checks, filtered
reports and campaign summaries stop scaling with store size.  This
example shows:

1. the same sweep run against both backends -- the campaign layer
   cannot tell them apart, and both resume for free;
2. filtered reads and O(buckets) summaries off the SQLite indexes;
3. lossless migration between backends (``repro migrate``) and
   cross-backend merges, reporting identically throughout.

The same operations are available headless:

    python -m repro sweep small --campaign demo --store-format sqlite
    python -m repro migrate demo.jsonl -o demo.sqlite
    python -m repro report demo.sqlite --workload small --summary

Run:  python examples/store_backends.py
"""

import shutil
from pathlib import Path

from repro.campaign import Campaign, merge_stores, migrate_store, open_store

STORE_DIR = Path("artifacts") / "store-backends-demo"

GRID = dict(
    architectures=("casbus", "mux-bus"),
    bus_widths=(8, 16),
    schedulers=("greedy",),
)


def main() -> None:
    shutil.rmtree(STORE_DIR, ignore_errors=True)  # deterministic demo

    # -- 1. One sweep, two backends: the campaign layer is agnostic.
    reports = {}
    for backend in ("jsonl", "sqlite"):
        campaign = Campaign.sweep(
            "demo", ["small"], store_dir=STORE_DIR, backend=backend, **GRID
        )
        reports[backend] = campaign.run(parallel=False)
        resumed = Campaign.sweep(
            "demo", ["small"], store_dir=STORE_DIR, backend=backend, **GRID
        ).run(parallel=False)
        print(f"{backend:6s} {reports[backend].summary()}")
        assert resumed.executed == 0 and resumed.cached == resumed.total

    jsonl = open_store(STORE_DIR / "demo.jsonl")
    sqlite = open_store(STORE_DIR / "demo.sqlite")
    # The runs executed independently, so wall-clock timings differ --
    # but the identity-keyed results are equal by construction.
    assert jsonl.results() == sqlite.results()
    print("\nboth stores hold identical result sets under identical hashes")

    # -- 2. Indexed reads: filters and summaries without a full scan.
    matching = list(sqlite.iter_latest(architecture="mux-bus"))
    assert len(matching) == 2  # two bus widths
    print(f"indexed filter: architecture=mux-bus -> {len(matching)} records")
    for bucket, runs in sorted(sqlite.aggregate_counts().items()):
        print(f"  {bucket}: {runs} run(s)")
    assert sqlite.aggregate_counts() == jsonl.aggregate_counts()

    # -- 3. Migration and cross-backend merge, losslessly.
    migrated = migrate_store(
        STORE_DIR / "demo.sqlite", STORE_DIR / "migrated.jsonl"
    )
    assert migrated.records() == sqlite.records()
    merged = merge_stores(
        [jsonl, sqlite], STORE_DIR / "merged.sqlite"
    )
    assert merged.latest() == sqlite.latest()  # later source wins
    print(
        f"\nmigrated sqlite -> jsonl ({len(migrated)} runs) and merged "
        f"both backends -> {merged.path.name} ({len(merged)} runs)"
    )


if __name__ == "__main__":
    main()
