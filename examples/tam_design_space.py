"""TAM design-space exploration: choosing N and the architecture.

Walks the decisions the paper leaves to "the test designer and the
test programmer":

1. bus width N -- test time falls, CAS area rises, an interior optimum
   appears (section 3.3's trade-off);
2. architecture -- CAS-BUS versus multiplexed bus, daisy chain, static
   distribution, direct access and system-bus reuse on the same
   workload;
3. reconfiguration granularity -- session-based versus preemptive
   wire reallocation.

Run:  python examples/tam_design_space.py
"""

from repro.analysis.tables import format_table
from repro.baselines import all_baselines
from repro.baselines.casbus import CasBusTam
from repro.schedule.preemptive import schedule_preemptive
from repro.schedule.scheduler import schedule_greedy
from repro.soc.itc02 import d695_like


def width_sweep(cores) -> None:
    rows = []
    tam = CasBusTam(policy="contiguous")
    for n in (2, 3, 4, 6, 8, 12, 16):
        report = tam.evaluate(cores, n)
        rows.append((
            n, report.test_cycles, f"{report.area_proxy:.0f}",
            f"{report.total_cycles * report.area_proxy / 1e9:.2f}",
        ))
    print(format_table(
        ("N", "test cycles", "TAM area (GE)", "area x time (1e9)"),
        rows,
        title="1) bus-width trade-off (d695-like workload)",
    ))


def architecture_comparison(cores, n=8) -> None:
    rows = []
    for baseline in all_baselines():
        report = baseline.evaluate(cores, n)
        rows.append((
            report.name, report.total_cycles, report.extra_pins,
            f"{report.area_proxy:.0f}",
        ))
    rows.sort(key=lambda row: row[1])
    print("\n" + format_table(
        ("architecture", "total cycles", "extra pins", "area (GE)"),
        rows,
        title=f"2) architectures at N={n}",
    ))


def granularity(cores, n=8) -> None:
    greedy = schedule_greedy(cores, n)
    preemptive = schedule_preemptive(cores, n)
    print("\n3) reconfiguration granularity at N=8")
    print(f"   session-based: {greedy.total_cycles} cycles "
          f"({len(greedy.sessions)} sessions)")
    print(f"   preemptive   : {preemptive.total_cycles} cycles "
          f"({len(preemptive.segments)} segments)")
    print("\n" + greedy.describe())


def main() -> None:
    cores = d695_like()
    width_sweep(cores)
    architecture_comparison(cores)
    granularity(cores)


if __name__ == "__main__":
    main()
