"""TAM design-space exploration: choosing N and the architecture.

Walks the decisions the paper leaves to "the test designer and the
test programmer", entirely through the :mod:`repro.api` experiment
layer:

1. bus width N -- test time falls, CAS area rises, an interior optimum
   appears (section 3.3's trade-off); one parallel sweep call;
2. architecture -- CAS-BUS versus multiplexed bus, daisy chain, static
   distribution, direct access and system-bus reuse on the same
   workload, all plucked from the registry by name;
3. scheduler strategy -- session-based, LPT-static, preemptive and
   best-reconfiguration granularities, also by name.

Run:  python examples/tam_design_space.py
"""

from repro.analysis.tables import format_table
from repro.errors import ScheduleError
from repro.api import (
    Experiment,
    RunConfig,
    list_architectures,
    list_schedulers,
    results_table,
    run_sweep,
)
from repro.soc.itc02 import d695_like


def width_sweep(cores) -> None:
    results = run_sweep(
        cores,
        architectures=("casbus",),
        bus_widths=(2, 3, 4, 6, 8, 12, 16),
        base_config=RunConfig(cas_policy="contiguous"),
        parallel=True,
    )
    rows = [
        (r.bus_width, r.test_cycles, f"{r.area_ge:.0f}",
         f"{r.total_cycles * r.area_ge / 1e9:.2f}")
        for r in results
    ]
    print(format_table(
        ("N", "test cycles", "TAM area (GE)", "area x time (1e9)"),
        rows,
        title="1) bus-width trade-off (d695-like workload)",
    ))


def architecture_comparison(cores, n=8) -> None:
    results = run_sweep(
        cores,
        architectures=list_architectures(),
        bus_widths=(n,),
        parallel=True,
    )
    results = sorted(results, key=lambda r: r.total_cycles)
    headers, rows = results_table(results)
    print("\n" + format_table(
        headers, rows, title=f"2) architectures at N={n}",
    ))


def scheduler_comparison(cores, n=8) -> None:
    print(f"\n3) scheduler strategies on the CAS-BUS at N={n}")
    base = (Experiment(cores)
            .with_architecture("casbus")
            .with_bus_width(n))
    for name in list_schedulers():
        try:
            outcome = base.with_scheduler(name).schedule()
        except ScheduleError as exc:  # e.g. exhaustive on 10 cores
            print(f"   {name:<13} n/a ({exc})")
            continue
        print(f"   {name:<13} {outcome.test_cycles:>8} test "
              f"+ {outcome.config_cycles:>5} config cycles")
    print("\n" + base.with_scheduler("greedy").schedule().describe())


def main() -> None:
    cores = d695_like()
    width_sweep(cores)
    architecture_comparison(cores)
    scheduler_comparison(cores)


if __name__ == "__main__":
    main()
