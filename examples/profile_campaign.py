"""Observing a run: spans, metrics, traces, and the profile view.

Demonstrates the ``repro.obs`` layer end to end:

1. capture a traced campaign -- every executor phase, batch dispatch
   and store append becomes a nested span, every cache hit a counter;
2. print the aggregated profile (where did the time go?);
3. export the same trace as JSONL and read it back;
4. check the identity contract: tracing never changes a result.

The same flows are available headless:

    python -m repro profile run fig1
    python -m repro sweep fig1 --campaign demo --trace trace.jsonl
    python -m repro sweep itc02-d695 --campaign big --dashboard

Run:  python examples/profile_campaign.py
"""

import json
import shutil
from pathlib import Path

from repro import obs
from repro.campaign import Campaign

ARTIFACTS = Path("artifacts")
STORE_DIR = ARTIFACTS / "profile_campaign"
TRACE = ARTIFACTS / "profile_campaign_trace.jsonl"


def fresh_campaign(name: str) -> Campaign:
    return Campaign.sweep(
        name,
        ["fig1"],
        architectures=("casbus",),
        bus_widths=(None, 8),
        store_dir=STORE_DIR,
    )


def main() -> None:
    shutil.rmtree(STORE_DIR, ignore_errors=True)  # deterministic demo
    ARTIFACTS.mkdir(exist_ok=True)

    # -- 1. Trace a campaign: scoped collector + JSONL export.
    with obs.capture(sinks=[obs.JsonlSink(TRACE)]) as collector:
        report = fresh_campaign("traced").run(parallel=False)
        collector.close()
    print(report.summary())

    # -- 2. The aggregated profile: span tree rolled up by name.
    print()
    print(obs.format_profile(collector.spans(),
                             collector.metrics.snapshot()))

    # -- 3. The exported trace round-trips.
    spans, metrics = obs.read_trace(TRACE)
    roots = [span for span in spans if span.parent_id is None]
    print(f"\ntrace: {len(spans)} spans ({len(roots)} roots) "
          f"+ {len(metrics['counters'])} counters -> {TRACE}")
    assert {span.name for span in roots} == {"campaign.run"}
    assert any(span.name == "executor.session" for span in spans)

    # -- 4. Tracing is identity-neutral: same results, same bytes.
    untraced = fresh_campaign("untraced").run(parallel=False)
    traced_bytes = [json.dumps(r.to_dict(), sort_keys=True)
                    for r in report.results]
    untraced_bytes = [json.dumps(r.to_dict(), sort_keys=True)
                      for r in untraced.results]
    assert traced_bytes == untraced_bytes
    print("identity check: traced and untraced results are "
          "byte-identical")


if __name__ == "__main__":
    main()
