"""Optimizing a TAM: width/session co-optimisation with a Pareto front.

The CAS-BUS's pitch is that bus width is a *design knob*: more wires
buy shorter test time but cost pins and configuration bits.  The
``repro.schedule.optimize`` engines search that trade-off directly:

1. exact branch-and-bound on a small SoC -- the result provably
   matches exhaustive enumeration;
2. simulated annealing on an ITC'02-scale workload -- strictly better
   schedules than the greedy packer;
3. the Pareto front of (bus width, config bits, total cycles) points
   an integrator actually chooses from, via the experiment API.

The same flow is available headless:

    python -m repro optimize itc02-d695 -w 16
    python -m repro optimize itc02-p22810 -w 32 --method anneal \
        --store artifacts/campaigns/pareto.jsonl

Run:  python examples/optimize_tam.py
"""

from repro.api import Experiment
from repro.soc.itc02 import d695_like, p22810_like
from repro.schedule.optimize import optimize_anneal, optimize_bnb
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)


def main() -> None:
    # -- 1. Exact co-optimisation on a small SoC.
    small = d695_like()[:5]
    outcome = optimize_bnb(small, 8)
    exact = schedule_exhaustive(small, 8)
    print("exact search on a 5-core SoC:")
    print(outcome.describe())
    assert outcome.schedule.total_cycles == exact.total_cycles
    print(f"matches exhaustive enumeration "
          f"({exact.total_cycles} cycles)\n")

    # -- 2. Annealed co-optimisation at ITC'02 scale.
    cores = p22810_like()
    greedy = schedule_greedy(cores, 32)
    annealed = optimize_anneal(cores, 32)
    bound = lower_bound(cores, 32)
    win = (greedy.total_cycles - annealed.total_cycles) \
        / greedy.total_cycles
    print(f"p22810-like on N=32: greedy {greedy.total_cycles}, "
          f"annealed {annealed.total_cycles} ({win:.1%} faster), "
          f"lower bound {bound}")
    assert bound <= annealed.total_cycles <= greedy.total_cycles

    # -- 3. The Pareto front: what another wire actually buys.
    print("\nPareto front (bus width / config bits / total cycles):")
    for point in annealed.pareto:
        print(f"  N={point.bus_width:>2}  config_bits="
              f"{point.config_bits:>3}  total={point.total_cycles:>8}  "
              f"({point.sessions} sessions)")

    # The optimisers are registered strategies: any experiment or
    # campaign sweep can use them by name.
    result = (Experiment(d695_like())
              .with_architecture("casbus")
              .with_scheduler("optimize-anneal")
              .with_bus_width(16)
              .run())
    print(f"\nvia the experiment API: {result.total_cycles} total "
          f"cycles on N={result.bus_width} ({result.source})")


if __name__ == "__main__":
    main()
