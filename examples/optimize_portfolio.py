"""Scaling the optimizer: the parallel multi-start portfolio.

Single-start annealing leaves quality on the table at industrial
scale: different move sequences get stuck in different local optima.
``optimize_portfolio`` runs a *portfolio* of seeded searches -- anneal
restarts on a temperature ladder, a genetic crossover over session
partitions, and large-neighbourhood destroy-and-repair -- that share
one memoised cost model through a serialisable evaluation cache, and
merge their best partitions at round barriers.

Three properties worth seeing end to end:

1. on a p93791-class 110-core workload the portfolio beats both the
   greedy packer and a single-start anneal at the same move budget;
2. small problems stay *certified*: within exact reach the spec adds
   a branch-and-bound unit, so the answer is provably optimal;
3. results are a pure function of the seed -- ``--jobs 4`` returns
   byte-identical outcomes to ``--jobs 1``, only faster.

The same engine is available headless:

    python -m repro optimize itc02-p93791 -w 32 --jobs 4 --verbose

Run:  python examples/optimize_portfolio.py [--jobs N]
"""

import argparse

from repro.schedule.optimize import optimize_anneal, optimize_bnb
from repro.schedule.portfolio import PortfolioSpec, optimize_portfolio
from repro.schedule.scheduler import schedule_greedy
from repro.soc.itc02 import d695_like, p93791_like


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="portfolio worker processes (default: %(default)s)",
    )
    args = parser.parse_args()

    # -- 1. Industrial scale: portfolio vs greedy vs single-start.
    # Equal wall-clock framing: with enough workers every unit of the
    # round runs concurrently, so the portfolio's elapsed time equals
    # one unit budget -- the budget the single-start anneal gets.
    cores = p93791_like()
    width = 32
    unit_budget = 1600
    greedy = schedule_greedy(cores, width)
    single = optimize_anneal(
        cores, width, widths=(width,), iterations=unit_budget
    )
    outcome = optimize_portfolio(
        cores, width, widths=(width,),
        spec=PortfolioSpec(rounds=1, iterations=unit_budget),
        seed=0, jobs=args.jobs,
    )
    print(f"p93791-like ({len(cores)} cores) on N={width}, "
          f"{unit_budget} moves per search, jobs={args.jobs}:")
    print(f"  greedy packer        {greedy.total_cycles:>8}")
    print(f"  single-start anneal  {single.total_cycles:>8}")
    print(f"  portfolio            {outcome.total_cycles:>8}")
    assert outcome.total_cycles <= greedy.total_cycles
    assert outcome.total_cycles < single.total_cycles
    shared = outcome.cache_stats["shared_cache"]
    evals = outcome.cache_stats["evaluations"]
    print(f"  shared cache: {evals['hits']} evaluation hits, "
          f"{shared['merged']} worker delta entries merged back")

    # -- 2. Certified optimality where exact search reaches.
    small = d695_like()
    certified = optimize_portfolio(small, 16, seed=0, jobs=args.jobs)
    exact = optimize_bnb(small, 16)
    assert certified.total_cycles == exact.total_cycles
    assert certified.cache_stats["certified_widths"] == [1, 2, 4, 8, 16]
    print(f"\nd695-like: portfolio == branch-and-bound "
          f"({exact.total_cycles} cycles), every width certified")

    # -- 3. Determinism: the worker count never changes the answer.
    spec = PortfolioSpec(starts=1, rounds=1, iterations=300)
    runs = {
        jobs: optimize_portfolio(
            small, 16, widths=(8, 16), spec=spec, seed=7, jobs=jobs
        )
        for jobs in (1, 2)
    }
    assert (runs[1].cache_stats == runs[2].cache_stats
            and runs[1].pareto == runs[2].pareto)
    print("jobs=1 and jobs=2 agree point for point -- the seed, not "
          "the scheduling, decides the answer")


if __name__ == "__main__":
    main()
