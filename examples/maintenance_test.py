"""Maintenance test: periodic BIST while the system keeps running.

Paper section 4: "In case of maintenance test, it is possible to test
some embedded cores while others are in normal functioning mode.  This
is very useful when, e.g., an embedded memory test is periodically
required."

Three maintenance rounds of the fig-1 SoC's BISTed core run over the
CAS-BUS while the other cores hold live (functional) state; after every
round the example verifies that state is bit-identical.

Run:  python examples/maintenance_test.py
"""

from repro.schedule.concurrent import maintenance_session
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import fig1_soc


def main() -> None:
    soc = fig1_soc()
    system = build_system(soc)
    executor = SessionExecutor(system)

    # Pretend the system is mid-mission: give every core live state.
    for node in system.walk():
        if node.wrapper is not None and node.wrapper.core is not None:
            core = node.wrapper.core
            core.ff_values = [(3 * i + 1) % 2 for i in range(core.num_ffs)]

    plan, undisturbed = maintenance_session(soc, ["core3"])
    print(f"maintenance target: core3 (BIST); "
          f"{len(undisturbed)} cores stay functional\n")

    for round_index in range(3):
        session = executor.run_session(
            plan,
            label=f"round {round_index}",
            undisturbed_paths=undisturbed,
        )
        bist = session.core_results[0]
        untouched = sum(session.undisturbed.values())
        print(f"round {round_index}: BIST "
              f"{'pass' if bist.passed else 'FAIL'} in "
              f"{session.total_cycles} cycles "
              f"({session.config_cycles} config); "
              f"functional cores untouched: "
              f"{untouched}/{len(session.undisturbed)}")
        assert session.passed

    print("\nall rounds passed; no functional state was disturbed.")


if __name__ == "__main__":
    main()
