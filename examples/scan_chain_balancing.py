"""Scan-chain balancing: the test programmer's lever (paper section 4).

"In case of scanned cores, the test programmer can balance the length
of the scan chains within the test programs, in order to reduce the
test time."

Shows both views:

* model level -- grouping a legacy core's frozen, skewed chains onto
  bus wires (LPT vs exact) against free rebalancing;
* simulation level -- the same logic generated with balanced and with
  skewed chains, both actually tested through the CAS-BUS.

Run:  python examples/scan_chain_balancing.py
"""

import math

from repro.analysis.tables import format_table
from repro.schedule.balance import partition_lpt, partition_optimal
from repro.schedule.timing import scan_test_cycles
from repro.soc.core import CoreSpec
from repro.soc.soc import SocSpec
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system


def model_view() -> None:
    chains = (58, 12, 12, 8, 6, 4)
    patterns = 100
    total = sum(chains)
    print(f"legacy core: chains {list(chains)}, V={patterns}\n")
    rows = []
    for wires in (1, 2, 3, 4, 6):
        lpt = partition_lpt(chains, wires)
        best = partition_optimal(chains, wires)
        free = scan_test_cycles(math.ceil(total / wires), patterns)
        rows.append((
            wires,
            scan_test_cycles(lpt.makespan, patterns),
            scan_test_cycles(best.makespan, patterns),
            free,
        ))
    print(format_table(
        ("wires", "frozen chains (LPT)", "frozen chains (exact)",
         "rebalanced"),
        rows,
        title="test cycles by balancing freedom",
    ))


def simulation_view() -> None:
    print("\ncycle-accurate check (30 FFs, 3 wires):")
    for label, lengths in (("balanced 10/10/10", (10, 10, 10)),
                           ("skewed   24/3/3", (24, 3, 3))):
        core = CoreSpec.scan(
            "dut", seed=77, num_ffs=30, num_chains=3,
            chain_lengths=lengths, num_pis=2, num_pos=2,
            atpg_max_patterns=16,
        )
        soc = SocSpec(name="bal", bus_width=4, cores=(core,))
        executor = SessionExecutor(build_system(soc))
        plan = PlanBuilder().add_session(
            flat_assignment("dut", (0, 1, 2))
        ).build()
        result = executor.run_plan(plan)
        assert result.passed
        print(f"   {label}: {result.test_cycles} test cycles")


def main() -> None:
    model_view()
    simulation_view()


if __name__ == "__main__":
    main()
