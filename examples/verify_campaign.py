"""Static verification: catch corrupted artifacts before they spread.

Demonstrates the ``repro.verify`` layer end to end:

1. verify a scheduler's outcome against the cost model -- then corrupt
   the claimed cycle count and watch the exact diagnostic fire;
2. run a small campaign (every append is verified automatically), then
   corrupt the store on disk and audit it like CI does;
3. show the fail-fast contract: ``raise_if_failed`` turns diagnostics
   into a ``VerificationError`` -- the same escalation every run hits
   at the executor, runner and model boundaries -- and flipping
   ``with_verify`` never changes an experiment's identity hash.

The same audit is available headless:

    python -m repro verify artifacts/campaigns/demo.jsonl
    python -m repro verify --strict --json shards/*.jsonl

Run:  python examples/verify_campaign.py
"""

import dataclasses
import json
import shutil
from pathlib import Path

from repro.api import Experiment, get_scheduler
from repro.campaign import Campaign
from repro.errors import VerificationError
from repro.schedule.model import TamProblem
from repro.verify import verify_outcome, verify_store

STORE_DIR = Path("artifacts") / "verify-demo"


def main() -> None:
    shutil.rmtree(STORE_DIR, ignore_errors=True)  # deterministic demo

    # -- 1. Verify a scheduling outcome against the cost model.
    experiment = Experiment("itc02-d695").with_bus_width(16)
    cores = experiment.build().workload.cores
    problem = TamProblem.of(cores, 16)
    outcome = get_scheduler("greedy").schedule(cores, 16)
    report = verify_outcome(outcome, problem)
    print(f"greedy outcome on itc02-d695 w=16: {report.summary()}")
    assert report.ok

    lying = dataclasses.replace(outcome, test_cycles=outcome.test_cycles + 1)
    broken = verify_outcome(lying, problem)
    print("\ncorrupting the claimed cycle count fires:")
    for diagnostic in broken.diagnostics:
        print(f"  {diagnostic.render()}")
    assert "OUT001" in broken.rule_ids()

    # -- 2. Campaign stores are verified on append and auditable later.
    campaign = Campaign.sweep(
        "demo", ["small"], store_dir=STORE_DIR,
        architectures=("casbus", "mux-bus"), schedulers=("greedy",),
    )
    campaign.run(parallel=False)
    audit = verify_store(campaign.store)
    print(f"\nstore audit after the sweep: {audit.summary()}")
    assert audit.ok

    # Corrupt one persisted record the way a bad merge would.
    lines = campaign.store.path.read_text().splitlines()
    record = json.loads(lines[0])
    record["hash"] = "deadbeef"
    lines[0] = json.dumps(record)
    campaign.store.path.write_text("\n".join(lines) + "\n")
    tampered = verify_store(campaign.store)
    print(f"after tampering with a hash: {tampered.summary()}")
    print(tampered.table())
    assert not tampered.ok and "REC002" in tampered.rule_ids()

    # -- 3. The fail-fast contract, and identity neutrality.
    try:
        broken.raise_if_failed("itc02-d695/greedy")
        raise AssertionError("verification should have fired")
    except VerificationError as error:
        print(f"\nraise_if_failed escalates:\n  {error}")

    # Opting out is explicit -- and never changes the config hash, so
    # verified and unverified runs share campaign records.
    assert (experiment.with_verify(True).config_hash()
            == experiment.with_verify(False).config_hash())
    print("\nwith_verify(False) leaves the config hash unchanged")


if __name__ == "__main__":
    main()
