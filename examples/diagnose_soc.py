"""Diagnosing a failing SoC: inject -> screen -> reconfigure -> rank.

The walkthrough of the :mod:`repro.diagnose` subsystem:

1. **inject** a seeded defect into a simulatable SoC instance
   (expected data always comes from clean builds, so the defect shows
   up as real bit mismatches);
2. **screen** with the normal test program, syndromes captured;
3. **reconfigure** the CAS-BUS adaptively -- the failing core re-tested
   solo on *different* bus wires, the trick only a reconfigurable TAM
   has; a broken TAM wire is binary-searched the same way;
4. **rank** stuck-at candidates by fault-dictionary matching of the
   observed syndrome, then plan the minimal confirmation re-test.

Run:  python examples/diagnose_soc.py
"""

from repro.analysis.tables import format_table
from repro.diagnose import DefectScenario, diagnose_soc, random_scenario
from repro.diagnose.retest import minimal_retest_plan, run_retest
from repro.soc.itc02 import benchmark_soc


def main() -> None:
    soc = benchmark_soc("d695")

    # -- 1. Inject: a seeded stuck-at on one core's logic.
    scenario = random_scenario(soc, seed=7)
    print(f"injected defect: {scenario.describe()}")

    # -- 2+3+4. One call runs the whole flow: screen, adaptive
    #    reconfiguration probes, dictionary ranking.
    result = diagnose_soc(soc, scenario)
    print(f"screening: {len(result.failing_cores)} failing core(s) "
          f"{list(result.failing_cores)} in {result.screening_cycles} "
          f"cycles")
    print(f"adaptive probes: {result.probe_sessions} reconfigured "
          f"session(s), {result.diagnosis_cycles} cycles "
          f"(vs {result.full_retest_cycles} for a naive full re-run)")
    rows = [
        (rank, candidate.describe())
        for rank, candidate in enumerate(result.candidates[:5], start=1)
    ]
    print(format_table(("rank", "candidate"), rows,
                       title="ranked candidates"))
    rank = result.scenario_rank()
    print(f"true fault ranked #{rank} "
          f"(localised to {result.localized_core})")
    assert result.localized_core == scenario.core
    assert rank is not None and rank <= 5

    # -- A broken TAM wire instead: the bus is reconfigured *around*
    #    the defect and the wire is pinned by binary search.
    wire_result = diagnose_soc(soc, DefectScenario.open_wire(0, 1))
    top = wire_result.candidates[0]
    print(f"\nopen-wire scenario: {len(wire_result.failing_cores)} "
          f"core(s) failed, verdict: {top.describe()}")
    assert top.kind == "tam-wire" and top.wire == 0

    # -- Minimal confirmation re-test: only the suspects, scheduled on
    #    the shared cost model.
    retest = minimal_retest_plan(soc, result.failing_cores)
    print(f"\n{retest.describe()}")
    confirmed = run_retest(soc, retest)  # repaired (clean) instance
    print(f"re-test of the repaired SoC: "
          f"{'PASS' if confirmed.passed else 'FAIL'} in "
          f"{confirmed.total_cycles} cycles")
    assert confirmed.passed


if __name__ == "__main__":
    main()
