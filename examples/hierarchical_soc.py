"""Hierarchical cores: a CAS-BUS inside a CAS-BUS (paper figure 2d).

Builds a custom SoC whose big IP block embeds its own two-core
sub-system with an internal test bus.  The configuration chain threads
both levels in one serial pass; test data reaches the inner cores
through two stacked CAS switches, and the pairing heuristic keeps each
logical channel on one top-level wire end to end.

Run:  python examples/hierarchical_soc.py
"""

from repro.sim.plan import CoreAssignment, PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.core import CoreSpec
from repro.soc.soc import SocSpec


def build_soc() -> SocSpec:
    inner = SocSpec(
        name="bigip_inner",
        bus_width=2,
        cores=(
            CoreSpec.scan("dsp", seed=31, num_ffs=14, num_chains=2,
                          num_pis=3, num_pos=3, atpg_max_patterns=20),
            CoreSpec.scan("dma", seed=32, num_ffs=9, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=20),
        ),
    )
    soc = SocSpec(
        name="hier_demo",
        bus_width=3,
        cores=(
            CoreSpec.hierarchical("bigip", inner=inner),
            CoreSpec.scan("uart", seed=33, num_ffs=8, num_chains=1,
                          num_pis=2, num_pos=2, atpg_max_patterns=16),
        ),
    )
    soc.validate()
    return soc


def main() -> None:
    soc = build_soc()
    print(soc.describe())
    system = build_system(soc)
    print("\nserial configuration chain (outer level threads inner):")
    for register in system.serial_layout():
        print(f"   {register.path:<18} {register.width} bits")

    executor = SessionExecutor(system)
    plan = (
        PlanBuilder()
        # Session 1: inner DSP on both inner wires; UART rides wire 2.
        .add_session(
            CoreAssignment(path=("bigip", "dsp"),
                           levels=((0, 1), (0, 1))),
            flat_assignment("uart", (2,)),
            label="dsp+uart",
        )
        # Session 2: inner DMA on inner wire 1 (outer CAS reconfigured).
        .add_session(
            CoreAssignment(path=("bigip", "dma"),
                           levels=((1, 2), (1,))),
            label="dma",
        )
        .build("hierarchy demo")
    )
    result = executor.run_plan(plan)
    print(f"\ntotal: {result.total_cycles} cycles, passed={result.passed}")
    for session in result.sessions:
        for core in session.core_results:
            print(f"   [{session.label}] {core.name:<10} "
                  f"{'pass' if core.passed else 'FAIL'} | {core.detail}")


if __name__ == "__main__":
    main()
