"""Campaigns: durable, resumable, shardable design-space sweeps.

Demonstrates the ``repro.campaign`` layer end to end:

1. run a campaign -- every completed run is appended to a JSONL store
   the moment it finishes;
2. "crash" partway through a second campaign and resume it -- only the
   missing configs execute;
3. split the same campaign across two shards (as two CI jobs would),
   merge the shard stores, and check the merged result set equals the
   unsharded one.

The same flows are available headless:

    python -m repro sweep itc02-d695 --architectures casbus,mux-bus \
        --bus-widths 8,16,32 --campaign demo --shard 1/2
    python -m repro merge shard1.jsonl shard2.jsonl -o merged.jsonl
    python -m repro report merged.jsonl

Run:  python examples/campaign_sweep.py
"""

import shutil
from pathlib import Path

from repro.campaign import Campaign, merge_stores

STORE_DIR = Path("artifacts") / "campaigns"

GRID = dict(
    architectures=("casbus", "mux-bus", "static-distribution"),
    bus_widths=(8, 16, 32),
    schedulers=("greedy",),
)


def fresh_campaign(name: str) -> Campaign:
    return Campaign.sweep(name, ["itc02-d695"], store_dir=STORE_DIR, **GRID)


def main() -> None:
    shutil.rmtree(STORE_DIR, ignore_errors=True)  # deterministic demo

    # -- 1. A campaign persists every run as it completes.
    campaign = fresh_campaign("example")
    report = campaign.run(parallel=False)
    print(report.summary())
    print(f"store: one JSON record per run in {report.store_path}")

    # Re-running the finished campaign executes nothing.
    again = fresh_campaign("example").run(parallel=False)
    print(again.summary())
    assert again.executed == 0

    # -- 2. Interrupt a campaign, then resume it.
    class Crash(RuntimeError):
        pass

    def crash_after_three(experiment, result, *, cached, elapsed):
        crash_after_three.count += 1
        if crash_after_three.count >= 3:
            raise Crash

    crash_after_three.count = 0
    interrupted = fresh_campaign("resumed")
    try:
        interrupted.run(parallel=False, on_result=crash_after_three)
    except Crash:
        pass
    print(f"\n'crashed' after {len(interrupted.store.hashes())} runs; "
          f"{interrupted.pending()} still missing")
    resumed = fresh_campaign("resumed").run(parallel=False)
    print(f"resumed: {resumed.summary()}")
    assert resumed.executed == resumed.total - 3

    # -- 3. Shard the campaign as two CI jobs would, then merge.
    print()
    shards = []
    for index in (1, 2):
        shard = fresh_campaign(f"shard{index}")
        shard_report = shard.run(shard=(index, 2), parallel=False)
        print(shard_report.summary())
        shards.append(shard.store)
    merged = merge_stores(shards, STORE_DIR / "merged.jsonl")
    full = fresh_campaign("example").store
    same = merged.results() == full.results()
    print(f"merged {len(merged)} runs; equals unsharded campaign: {same}")
    assert same


if __name__ == "__main__":
    main()
