"""Monte-Carlo defect sweep through one vectorized batch dispatch.

Yield analysis asks one question many times: *how does the same test
program respond across many defective instances of one design?*  The
geometry -- CAS hardware, schedule, compiled scan programs -- never
changes between instances; only the injected defect does.  The batch
kernel (:mod:`repro.sim.batch`) exploits that: the program is lowered
to packed word arrays once and all N scenarios execute as array ops,
one dispatch per shift window, instead of N full simulator runs.

The sweep below screens 64 seeded stuck-at instances of the paper's
figure-1 SoC three ways -- the batch entry point on the executor, the
``run_many`` fault-sweep routing, and a scalar reference loop -- and
shows they agree bit for bit.

Run:  python examples/batch_sweep.py
"""

import time
from collections import Counter

from repro.analysis.tables import format_table
from repro.api import Experiment
from repro.api.runner import run_many
from repro.bist.engine import random_detectable_fault
from repro.core.tam import CasBusTamDesign
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import fig1_soc

N_SCENARIOS = 64


def scenarios_for(soc):
    """Clean plus seeded detectable stuck-at faults, round-robin over
    the scan cores (expected data always comes from clean builds)."""
    victims = [core for core in soc.cores if core.method.value == "scan"]
    scenarios = [None]
    for seed in range(N_SCENARIOS - 1):
        victim = victims[seed % len(victims)]
        fault = random_detectable_fault(victim.build_scannable(),
                                        seed=seed)
        scenarios.append({victim.name: fault})
    return scenarios


def main() -> None:
    soc = fig1_soc()
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    scenarios = scenarios_for(soc)

    # -- One dispatch for the whole sweep.
    executor = SessionExecutor(build_system(soc))
    start = time.perf_counter()
    batch = executor.run_batch(plan, scenarios)
    batch_s = time.perf_counter() - start

    # -- The same sweep as a scalar per-scenario loop (the old way).
    start = time.perf_counter()
    scalar = [
        SessionExecutor(
            build_system(soc, inject_faults=scenario)  # RL005 baseline
        ).run_plan(plan)
        for scenario in scenarios
    ]
    scalar_s = time.perf_counter() - start
    assert batch == scalar, "batch must be byte-identical to scalar"

    # -- And through the experiment API: run_many detects the
    #    same-geometry fault sweep and routes it through one dispatch.
    base = Experiment(soc)
    results = run_many(
        [base if s is None else base.with_faults(s) for s in scenarios],
        parallel=False,
    )
    assert [r.passed for r in results] == [r.passed for r in batch]

    failing = Counter(
        core.name
        for program in batch
        for core in program.core_results()
        if not core.passed
    )
    rows = [(name, failing[name]) for name in sorted(failing)]
    print(format_table(
        ("victim core", "failing instances"), rows,
        title=f"defect sweep over {N_SCENARIOS} instances -- fig-1 SoC",
    ))
    # A couple of faults detectable by a core's standalone test set
    # alias in the compacted in-system response -- real escapes the
    # sweep exists to count, and both execution paths agree on them.
    passed = sum(1 for program in batch if program.passed)
    print(f"{passed}/{N_SCENARIOS} instances pass "
          f"(clean + {passed - 1} escape(s))")
    print(f"batch dispatch: {batch_s * 1e3:.0f} ms for the sweep; "
          f"scalar loop: {scalar_s * 1e3:.0f} ms "
          f"({scalar_s / batch_s:.1f}x)")
    assert batch[0].passed and passed <= N_SCENARIOS // 8


if __name__ == "__main__":
    main()
