"""Quickstart: generate a CAS, inspect it, and watch it switch.

Covers the library's entry points in ~80 lines:

1. the CAS generator (paper section 3.2/3.3) -- instruction set, gate
   count, VHDL;
2. the behavioural CAS -- configuration shifting and N/P routing;
3. a complete (tiny) SoC test, one call;
4. the ``repro.api`` registry -- every TAM architecture on the same
   workload, interchangeable by name.

Run:  python examples/quickstart.py
"""

from repro import values as lv
from repro.api import Experiment, list_architectures
from repro.analysis.tables import format_table
from repro.core import CoreAccessSwitch, generate_cas
from repro.core.tam import CasBusTamDesign
from repro.soc.library import small_soc


def main() -> None:
    # -- 1. Generate the CAS hardware for N=4 bus wires, P=2 core pins.
    design = generate_cas(4, 2)
    print(f"CAS(N=4, P=2): m={design.m} instructions, "
          f"k={design.k}-bit register, "
          f"{design.area.cell_count} mapped cells "
          f"({design.area.area_ge} GE)")
    print("first VHDL lines:")
    for line in design.vhdl.splitlines()[:6]:
        print("   ", line)

    # -- 2. Drive the behavioural model: configure, then route.
    cas = CoreAccessSwitch(design.iset)
    scheme = next(s for s in design.iset.schemes
                  if s.wire_of_port == (2, 0))
    print(f"\nselected scheme: {scheme.describe()}")
    for bit in design.iset.code_to_bits(design.iset.encode(scheme)):
        cas.shift(bit)              # serial configuration on e0/s0
    cas.update()                    # activate
    routing = cas.route(
        e=(lv.ONE, lv.ZERO, lv.ZERO, lv.ONE),
        core_returns=(lv.ONE, lv.ZERO),
    )
    print("bus in  1001 ->",
          "core sees o =", lv.to_string(routing.o),
          "| bus out =", lv.to_string(routing.s))

    # -- 3. Full SoC test in one call.
    tam = CasBusTamDesign.for_soc(small_soc())
    result = tam.run()
    print(f"\nsmall SoC test: {result.total_cycles} cycles, "
          f"passed={result.passed}")
    for core in result.core_results():
        print(f"   {core.name:<6} {core.method:<5} "
              f"{'pass' if core.passed else 'FAIL'}  ({core.detail})")

    # -- 4. Every registered TAM architecture on the same workload.
    #    "casbus" simulates cycle-accurately; the baselines answer from
    #    the abstract timing model -- one uniform result either way.
    rows = []
    for name in list_architectures():
        run = Experiment(small_soc()).with_architecture(name).run()
        rows.append((name, run.total_cycles, run.extra_pins,
                     f"{run.area_ge:.0f}", run.source))
    print("\n" + format_table(
        ("architecture", "total cycles", "pins", "area (GE)", "source"),
        rows,
        title="the registry: one experiment API for every TAM style",
    ))


if __name__ == "__main__":
    main()
