"""The paper's figure 1 SoC, tested end to end -- then broken on purpose.

Builds the six-core SoC (scan, BIST, external, hierarchical cores plus
the wrapped system bus), generates its TAM, runs the complete test
program cycle-accurately, and prints the per-session report.  A second
run injects a stuck-at fault into one core and shows the test program
catching it.  Finally a VCD waveform of the bus activity is dumped for
a waveform viewer.

Artifacts (the VCD) land in the gitignored ``artifacts/`` directory
next to the repository root, never in the working directory.

Run:  python examples/soc_test_session.py
"""

import os

from repro.bist.engine import random_detectable_fault
from repro.core.tam import CasBusTamDesign
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.sim.trace import TraceRecorder
from repro.sim.vcd import write_vcd
from repro.soc.library import fig1_soc


def report(result, title) -> None:
    print(f"\n== {title}: {result.total_cycles} cycles "
          f"({result.config_cycles} config + {result.test_cycles} test), "
          f"{'ALL PASS' if result.passed else 'FAILURES DETECTED'}")
    for session in result.sessions:
        print(f"  session {session.label!r}: "
              f"{session.config_cycles}+{session.test_cycles} cycles")
        for core in session.core_results:
            flag = "pass" if core.passed else "FAIL"
            print(f"     {core.name:<14} {core.method:<8} {flag:<4} "
                  f"{core.mismatches:>3} mismatches | {core.detail}")


def main() -> None:
    soc = fig1_soc()
    print(soc.describe())
    tam = CasBusTamDesign.for_soc(soc)
    print(f"\nTAM hardware: {len(tam.cas_designs)} CASes, "
          f"{tam.total_cas_cells} cells, {tam.total_cas_ge} GE, "
          f"{tam.total_config_bits}-bit configuration chain")

    # Healthy silicon.
    report(tam.run(), "healthy fig-1 SoC")

    # Same SoC with a manufacturing defect in core2's logic.
    clean = soc.core_named("core2").build_scannable()
    fault = random_detectable_fault(clean, seed=3)
    print(f"\ninjecting stuck-at-{fault[1]} on node {fault[0]} of core2 ...")
    report(tam.run(inject_faults={"core2": fault}),
           "defective fig-1 SoC")

    # Waveform of the first sessions on a fresh system.  Tracing needs
    # per-cycle visibility, so this run uses the legacy backend; the
    # healthy/defective runs above ride the compiled kernel.
    trace = TraceRecorder()
    system = build_system(soc)
    executor = SessionExecutor(system, trace=trace, backend="legacy")
    executor.run_plan(tam.executable_plan())
    artifacts = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "artifacts",
    )
    os.makedirs(artifacts, exist_ok=True)
    vcd_path = os.path.join(artifacts, "fig1_bus.vcd")
    write_vcd(trace, vcd_path, design_name="fig1")
    print(f"\nwrote {os.path.relpath(vcd_path)} "
          f"({len(trace.signals())} signals, "
          f"{trace.max_cycle + 1} cycles)")


if __name__ == "__main__":
    main()
