#!/usr/bin/env python3
"""Gate gross performance regressions on a committed baseline.

Compares a pytest-benchmark JSON record (``--benchmark-json`` output)
against ``benchmarks/bench_smoke_baseline.json`` and fails when any
benchmark's mean time exceeds ``tolerance`` times its baseline mean,
or when a baselined benchmark vanished.

The tolerance is deliberately loose: CI runners are shared and noisy,
and the point is catching order-of-magnitude breakage (the compiled
kernel silently falling back to object stepping, a cache stopping to
cache), not 20%% drift.  Regenerate the baseline with ``--update``
after an intentional performance change.

Usage:
    python scripts/check_bench_regression.py BENCH_smoke.json
    python scripts/check_bench_regression.py BENCH_smoke.json --update
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path("benchmarks") / "bench_smoke_baseline.json"
DEFAULT_TOLERANCE = 5.0
BASELINE_SCHEMA = 1


def load_means(record_path: Path) -> "dict[str, float]":
    """``fullname -> mean seconds`` from a pytest-benchmark JSON."""
    payload = json.loads(record_path.read_text())
    return {
        bench["fullname"]: bench["stats"]["mean"]
        for bench in payload["benchmarks"]
    }


def write_baseline(baseline_path: Path, means: "dict[str, float]") -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "note": (
            "Reference mean seconds per benchmark; regenerate with "
            "scripts/check_bench_regression.py <record> --update"
        ),
        "means_s": {name: means[name] for name in sorted(means)},
    }
    baseline_path.write_text(json.dumps(payload, indent=2) + "\n")


def compare(
    current: "dict[str, float]",
    baseline: "dict[str, float]",
    tolerance: float,
) -> int:
    failures = []
    width = max(len(name) for name in baseline) if baseline else 0
    for name in sorted(baseline):
        reference = baseline[name]
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: benchmark missing from record")
            print(f"  {name:<{width}}  MISSING")
            continue
        ratio = measured / reference if reference else float("inf")
        verdict = "ok"
        if ratio > tolerance:
            verdict = f"FAIL (> {tolerance:.1f}x)"
            failures.append(f"{name}: {ratio:.1f}x slower than baseline")
        print(
            f"  {name:<{width}}  base {reference * 1e3:9.2f} ms"
            f"  now {measured * 1e3:9.2f} ms  {ratio:5.2f}x  {verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: not in baseline (run --update to adopt)")
    for failure in failures:
        print(f"regression: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", type=Path, help="pytest-benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fail when mean exceeds tolerance x baseline (default %(default)s)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this record and exit",
    )
    args = parser.parse_args(argv)

    current = load_means(args.record)
    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {args.baseline} ({len(current)} benchmarks)")
        return 0
    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first")
        return 1
    payload = json.loads(args.baseline.read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        print(f"unsupported baseline schema in {args.baseline}")
        return 1
    print(f"comparing against {args.baseline} (tolerance {args.tolerance}x)")
    return compare(current, payload["means_s"], args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
