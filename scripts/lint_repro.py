#!/usr/bin/env python3
"""Project-specific AST lint: determinism and serialization hygiene.

Ruff catches generic Python mistakes; this lint encodes the invariants
that make *this* repo's campaigns resumable and its artifacts
auditable.  Four checks, each with a stable id:

* ``RL001`` -- no unseeded ``random.Random()`` outside ``tests/``:
  every stochastic component (workload generators, the annealing
  scheduler, scenario drawing) must take an explicit seed or the
  results it feeds into stop being reproducible.
* ``RL002`` -- no wall-clock reads (``time.time``, ``datetime.now``,
  ``utcnow``, ``today``) in the identity/serialization modules: a
  timestamp inside a hashed payload breaks content addressing, so the
  modules that build record identity may never consult the clock.
  (``elapsed_s`` timing happens in the runner, outside these modules.)
* ``RL003`` -- every class with a ``to_dict`` method defines a
  matching ``from_dict``: one-way serialization rots silently until a
  store cannot be read back; the pair keeps round-trips testable.
* ``RL004`` -- dict literals with a ``"schema"`` key must reference a
  named constant (``SCHEMA_VERSION``, ``HASH_SCHEMA``, ...), never a
  bare integer literal: inlined schema numbers dodge the single bump
  point that invalidates stale records.
* ``RL005`` -- no per-scenario Python loops over the scalar executor
  (``for ... in scenarios: ....run_plan(...)``) outside ``tests/``:
  the vectorized batch kernel (:mod:`repro.sim.batch`,
  ``SessionExecutor.run_batch``) executes same-geometry scenario
  sweeps in one dispatch.  Deliberate scalar loops (fallbacks,
  benchmark baselines) carry ``RL005`` on the offending line.
* ``RL006`` -- no direct ``random.Random(...)`` construction inside
  ``repro.schedule`` (seeded or not): search randomness must flow
  from :class:`repro.schedule.seeds.SeedStream`, whose coordinate
  hashing keeps portfolio results independent of worker count and
  draw order.  The one sanctioned construction site
  (``seeds.py``) carries ``RL006`` on the line.
* ``RL007`` -- no ``print(...)`` and no self-built timers
  (``time.perf_counter``/``time.monotonic``/``time.time``) inside
  ``src/repro``: user-facing text flows through
  :class:`repro.obs.Console` and timing through
  :mod:`repro.obs.timing`, so ``--quiet``/``--json`` stay coherent
  and every duration is measured the same way.  The sanctioned sites
  (the console/dashboard rendering layer, the one ``perf_counter``
  call in ``obs/timing.py``) carry ``RL007`` on the line.

Usage:
    python scripts/lint_repro.py            # lint src/ + scripts/
    python scripts/lint_repro.py PATH...    # lint specific trees
"""

import argparse
import ast
import sys
from pathlib import Path

DEFAULT_ROOTS = ("src", "scripts", "examples", "benchmarks")

#: Modules whose payloads are hashed or persisted: the clock is banned.
IDENTITY_MODULES = (
    "src/repro/campaign/backend.py",
    "src/repro/campaign/hashing.py",
    "src/repro/campaign/sqlite.py",
    "src/repro/campaign/store.py",
    "src/repro/diagnose/records.py",
    "src/repro/api/results.py",
)

#: Attribute calls that read the wall clock.
CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Attribute calls that build an ad-hoc timer (RL007): library code
#: times work through ``repro.obs.timing`` instead.
TIMER_CALLS = {
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "time"),
    ("time", "time_ns"),
}


def is_test_path(path: Path) -> bool:
    return "tests" in path.parts or path.name.startswith("test_")


def _call_name(node: ast.Call) -> "tuple[str, str] | None":
    """``("obj", "attr")`` for ``obj.attr(...)`` calls, else ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id, func.attr
        if isinstance(value, ast.Attribute):
            # datetime.datetime.now(...) -> ("datetime", "now")
            return value.attr, func.attr
    return None


def check_unseeded_random(path: Path, tree: ast.AST) -> "list[str]":
    """RL001: ``random.Random()`` with no seed argument."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        unseeded = not node.args and not node.keywords
        if name == ("random", "Random") and unseeded:
            problems.append(
                f"{path}:{node.lineno}: RL001 unseeded random.Random() "
                f"(pass an explicit seed: results must be reproducible)"
            )
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and unseeded
        ):
            problems.append(
                f"{path}:{node.lineno}: RL001 unseeded Random() "
                f"(pass an explicit seed: results must be reproducible)"
            )
    return problems


def check_wall_clock(path: Path, tree: ast.AST) -> "list[str]":
    """RL002: clock reads inside identity/serialization modules."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in CLOCK_CALLS:
            problems.append(
                f"{path}:{node.lineno}: RL002 wall-clock read "
                f"{name[0]}.{name[1]}() in an identity module "
                f"(hashed payloads must not depend on the clock)"
            )
    return problems


def check_dict_pairs(path: Path, tree: ast.AST) -> "list[str]":
    """RL003: ``to_dict`` without a matching ``from_dict``."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "to_dict" in methods and "from_dict" not in methods:
            problems.append(
                f"{path}:{node.lineno}: RL003 class {node.name} defines "
                f"to_dict without from_dict (serialization must "
                f"round-trip)"
            )
    return problems


def check_schema_literals(path: Path, tree: ast.AST) -> "list[str]":
    """RL004: ``"schema"`` dict keys bound to bare integer literals."""
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant) and key.value == "schema"
            ):
                continue
            if isinstance(value, ast.Constant) and isinstance(
                value.value, int
            ):
                problems.append(
                    f"{path}:{value.lineno}: RL004 schema version is a "
                    f"bare literal {value.value} (reference the named "
                    f"SCHEMA constant so bumps happen in one place)"
                )
    return problems


def _names_in(node: ast.AST) -> "set[str]":
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def check_scenario_loops(
    path: Path, tree: ast.AST, source_lines: "list[str]"
) -> "list[str]":
    """RL005: per-scenario loops over the scalar executor."""

    def waived(lineno: int) -> bool:
        line = (source_lines[lineno - 1]
                if 0 < lineno <= len(source_lines) else "")
        return "RL005" in line

    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        names = _names_in(node.target) | _names_in(node.iter)
        if not any("scenario" in name.lower() for name in names):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("run_session", "run_plan")):
                continue
            if waived(node.lineno) or waived(call.lineno):
                continue
            problems.append(
                f"{path}:{call.lineno}: RL005 per-scenario loop over "
                f"the scalar executor (one batch dispatch via "
                f"SessionExecutor.run_batch / repro.sim.batch runs the "
                f"whole sweep; waive deliberate loops with RL005 on "
                f"the line)"
            )
    return problems


def check_schedule_randomness(
    path: Path, tree: ast.AST, source_lines: "list[str]"
) -> "list[str]":
    """RL006: ``random.Random`` construction inside ``repro.schedule``.

    Unlike RL001 this bans *seeded* construction too: a generator built
    mid-search couples results to draw order and work distribution.
    Generators must come from ``SeedStream.rng(...)``, a pure function
    of ``(root, coordinates)``; the one sanctioned site in ``seeds.py``
    carries ``RL006`` on the offending line as a waiver.
    """

    def waived(lineno: int) -> bool:
        line = (source_lines[lineno - 1]
                if 0 < lineno <= len(source_lines) else "")
        return "RL006" in line

    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        direct = isinstance(func, ast.Name) and func.id == "Random"
        if not direct and _call_name(node) != ("random", "Random"):
            continue
        if waived(node.lineno) or waived(node.lineno - 1):
            continue
        problems.append(
            f"{path}:{node.lineno}: RL006 direct random.Random() "
            f"construction in repro.schedule (draw generators from "
            f"SeedStream.rng(...) so results stay independent of "
            f"worker count; the sanctioned site carries RL006)"
        )
    return problems


def check_print_and_timers(
    path: Path, tree: ast.AST, source_lines: "list[str]"
) -> "list[str]":
    """RL007: ``print`` / hand-rolled timers inside ``src/repro``.

    Library code records spans and metrics; what the user *sees* is
    the CLI rendering layer's job (:class:`repro.obs.Console`, the
    sweep dashboard), and what gets *timed* flows through
    :mod:`repro.obs.timing` so one clock rules every duration.  The
    sanctioned sites carry ``RL007`` on the offending line.
    """

    def waived(lineno: int) -> bool:
        line = (source_lines[lineno - 1]
                if 0 < lineno <= len(source_lines) else "")
        return "RL007" in line

    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if waived(node.lineno) or waived(node.lineno - 1):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            problems.append(
                f"{path}:{node.lineno}: RL007 print() in library code "
                f"(render through repro.obs.Console so --quiet/--json "
                f"stay coherent; sanctioned rendering sites carry "
                f"RL007 on the line)"
            )
        name = _call_name(node)
        if name in TIMER_CALLS:
            problems.append(
                f"{path}:{node.lineno}: RL007 ad-hoc timer "
                f"{name[0]}.{name[1]}() (time through "
                f"repro.obs.timing -- stopwatch() / perf_seconds(); "
                f"the one sanctioned site carries RL007 on the line)"
            )
    return problems


def _in_schedule_package(path: Path) -> bool:
    normalized = str(path).replace("\\", "/")
    return "repro/schedule/" in normalized


def _in_repro_package(path: Path) -> bool:
    normalized = str(path).replace("\\", "/")
    return "src/repro/" in normalized


def lint_file(path: Path) -> "list[str]":
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [f"{path}: RL000 unparseable: {error}"]
    problems = []
    if not is_test_path(path):
        problems += check_unseeded_random(path, tree)
    if str(path).replace("\\", "/") in IDENTITY_MODULES:
        problems += check_wall_clock(path, tree)
    if not is_test_path(path):
        problems += check_dict_pairs(path, tree)
    problems += check_schema_literals(path, tree)
    if not is_test_path(path):
        problems += check_scenario_loops(path, tree,
                                         source.splitlines())
    if not is_test_path(path) and _in_schedule_package(path):
        problems += check_schedule_randomness(path, tree,
                                              source.splitlines())
    if not is_test_path(path) and _in_repro_package(path):
        problems += check_print_and_timers(path, tree,
                                           source.splitlines())
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "roots",
        nargs="*",
        default=list(DEFAULT_ROOTS),
        help="directories or files to lint (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    files: "list[Path]" = []
    for root in args.roots:
        root_path = Path(root)
        if root_path.is_file():
            files.append(root_path)
        else:
            files.extend(sorted(root_path.rglob("*.py")))
    problems: "list[str]" = []
    for path in files:
        problems.extend(lint_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(
            f"lint_repro: {len(problems)} problem(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_repro: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
