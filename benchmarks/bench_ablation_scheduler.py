"""Experiment A2 -- scheduler-quality ablation.

The paper leaves scheduling to "a good collaboration between the test
designer and the test programmer"; the library implements the policies
as registered :class:`~repro.api.schedulers.SchedulerStrategy` plugins.
This ablation certifies them against each other and against the
information-theoretic lower bound:

* ``greedy`` session packing (fast, the default);
* ``preemptive`` wire reallocation (the reconfigurability ceiling);
* ``exhaustive`` enumeration (optimal, small instances only).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import get_scheduler
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.scheduler import lower_bound

from conftest import emit


def _small_instances():
    base = [
        CoreTestParams(name=f"s{i}", method=TestMethod.SCAN,
                       flops=flops, patterns=patterns, max_wires=wires)
        for i, (flops, patterns, wires) in enumerate(
            ((120, 30, 4), (80, 22, 2), (60, 45, 1), (200, 10, 4))
        )
    ]
    return base


def test_greedy_vs_optimal(benchmark):
    cores = _small_instances()
    greedy = get_scheduler("greedy")
    optimal = get_scheduler("exhaustive")

    def compare():
        rows = []
        for n in (2, 4, 6):
            fast = greedy.schedule(cores, n, charge_config=False)
            best = optimal.schedule(cores, n, charge_config=False)
            bound = lower_bound(cores, n)
            rows.append((
                n, bound, best.test_cycles, fast.test_cycles,
                f"{fast.test_cycles / best.test_cycles:.3f}",
            ))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(format_table(
        ("N", "lower bound", "optimal", "greedy", "greedy/optimal"),
        rows,
        title="A2 -- greedy vs exhaustive (4-core instance)",
    ))
    for _, bound, optimal_cycles, greedy_cycles, _ in rows:
        assert bound <= optimal_cycles <= greedy_cycles
        assert greedy_cycles <= 1.5 * optimal_cycles


def test_preemption_gain(benchmark):
    workloads = {
        "d695-like": d695_like(),
        "random-c": random_test_params(314, num_cores=14),
    }
    greedy = get_scheduler("greedy")
    preemptive = get_scheduler("preemptive")

    def sweep():
        rows = []
        for name, cores in workloads.items():
            for n in (4, 8, 16):
                packed = greedy.schedule(cores, n, charge_config=False)
                staircase = preemptive.schedule(cores, n,
                                                charge_config=False)
                bound = lower_bound(cores, n)
                rows.append((
                    name, n, bound,
                    packed.test_cycles, staircase.test_cycles,
                    f"{packed.test_cycles / staircase.test_cycles:.3f}",
                    f"{staircase.test_cycles / bound:.3f}",
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "N", "bound", "greedy", "preemptive",
         "greedy/preempt", "preempt/bound"),
        rows,
        title="A2 -- preemptive reconfiguration gain",
    ))
    for row in rows:
        bound, greedy_cycles, preemptive_cycles = row[2], row[3], row[4]
        assert preemptive_cycles >= bound
        # Preemption never loses more than quantisation noise.
        assert preemptive_cycles <= greedy_cycles * 1.10
    # Somewhere the staircase buys a real margin.
    gains = [float(row[5]) for row in rows]
    assert max(gains) > 1.10
