"""Experiment A2 -- scheduler-quality ablation.

The paper leaves scheduling to "a good collaboration between the test
designer and the test programmer"; the library implements three
policies.  This ablation certifies them against each other and against
the information-theoretic lower bound:

* greedy session packing (fast, the default);
* preemptive wire reallocation (the reconfigurability ceiling);
* exhaustive enumeration (optimal, small instances only).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.soc.core import CoreTestParams, TestMethod
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.preemptive import schedule_preemptive
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)

from conftest import emit


def _small_instances():
    base = [
        CoreTestParams(name=f"s{i}", method=TestMethod.SCAN,
                       flops=flops, patterns=patterns, max_wires=wires)
        for i, (flops, patterns, wires) in enumerate(
            ((120, 30, 4), (80, 22, 2), (60, 45, 1), (200, 10, 4))
        )
    ]
    return base


def test_greedy_vs_optimal(benchmark):
    cores = _small_instances()

    def compare():
        rows = []
        for n in (2, 4, 6):
            greedy = schedule_greedy(cores, n, charge_config=False)
            optimal = schedule_exhaustive(cores, n, charge_config=False)
            bound = lower_bound(cores, n)
            rows.append((
                n, bound, optimal.test_cycles, greedy.test_cycles,
                f"{greedy.test_cycles / optimal.test_cycles:.3f}",
            ))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(format_table(
        ("N", "lower bound", "optimal", "greedy", "greedy/optimal"),
        rows,
        title="A2 -- greedy vs exhaustive (4-core instance)",
    ))
    for _, bound, optimal, greedy, _ in rows:
        assert bound <= optimal <= greedy
        assert greedy <= 1.5 * optimal


def test_preemption_gain(benchmark):
    workloads = {
        "d695-like": d695_like(),
        "random-c": random_test_params(314, num_cores=14),
    }

    def sweep():
        rows = []
        for name, cores in workloads.items():
            for n in (4, 8, 16):
                greedy = schedule_greedy(cores, n, charge_config=False)
                preemptive = schedule_preemptive(cores, n,
                                                 charge_config=False)
                bound = lower_bound(cores, n)
                rows.append((
                    name, n, bound,
                    greedy.test_cycles, preemptive.test_cycles,
                    f"{greedy.test_cycles / preemptive.test_cycles:.3f}",
                    f"{preemptive.test_cycles / bound:.3f}",
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "N", "bound", "greedy", "preemptive",
         "greedy/preempt", "preempt/bound"),
        rows,
        title="A2 -- preemptive reconfiguration gain",
    ))
    for row in rows:
        bound, greedy, preemptive = row[2], row[3], row[4]
        assert preemptive >= bound
        # Preemption never loses more than quantisation noise.
        assert preemptive <= greedy * 1.10
    # Somewhere the staircase buys a real margin.
    gains = [float(row[5]) for row in rows]
    assert max(gains) > 1.10
