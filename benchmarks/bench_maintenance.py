"""Experiment C4 -- section 4: maintenance / concurrent test.

"In case of maintenance test, it is possible to test some embedded
cores while others are in normal functioning mode.  This is very
useful when, e.g., an embedded memory test is periodically required."

A periodic BIST of one core runs over the CAS-BUS while every other
core's wrapper stays in NORMAL mode; the executor verifies their state
is untouched (non-interference), cycle-accurately.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.schedule.concurrent import maintenance_session
from repro.soc.library import fig1_soc
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system

from conftest import emit


def test_periodic_bist_maintenance(benchmark):
    soc = fig1_soc()

    def run_maintenance():
        system = build_system(soc)
        executor = SessionExecutor(system)
        # Give the functional cores some state to disturb.
        for node in system.walk():
            if node.wrapper is not None and node.wrapper.core is not None:
                core = node.wrapper.core
                core.ff_values = [(i * 7 + 1) % 2
                                  for i in range(core.num_ffs)]
        plan, undisturbed = maintenance_session(soc, ["core3"])
        results = []
        for period in range(3):  # periodic: three maintenance rounds
            results.append(executor.run_session(
                plan,
                label=f"maintenance-{period}",
                undisturbed_paths=undisturbed,
            ))
        return results

    results = benchmark.pedantic(run_maintenance, rounds=1, iterations=1)
    rows = []
    for session in results:
        bist = session.core_results[0]
        rows.append((
            session.label,
            "pass" if bist.passed else "FAIL",
            session.total_cycles,
            sum(session.undisturbed.values()),
            len(session.undisturbed),
        ))
        assert session.passed
        assert all(session.undisturbed.values()), session.undisturbed
    emit(format_table(
        ("round", "BIST result", "cycles", "cores undisturbed", "checked"),
        rows,
        title="C4 -- periodic embedded BIST while 5 cores stay "
              "functional (fig-1 SoC)",
    ))


def test_concurrent_scan_plus_functional(benchmark):
    """Scan-test two cores while the rest hold functional state."""
    soc = fig1_soc()

    def run():
        system = build_system(soc)
        executor = SessionExecutor(system)
        for node in system.walk():
            if node.wrapper is not None and node.wrapper.core is not None:
                core = node.wrapper.core
                core.ff_values = [1] * core.num_ffs
        plan, undisturbed = maintenance_session(soc, ["core2", "core6"])
        return executor.run_session(plan, label="scan-maintenance",
                                    undisturbed_paths=undisturbed)

    session = benchmark.pedantic(run, rounds=1, iterations=1)
    assert session.passed
    assert all(session.undisturbed.values())
    emit(format_table(
        ("tested", "result", "functional cores untouched"),
        (("core2 + core6",
          "pass" if session.passed else "FAIL",
          f"{sum(session.undisturbed.values())}/"
          f"{len(session.undisturbed)}"),),
        title="C4 -- concurrent scan maintenance test",
    ))
