"""Experiment F4 -- figure 4: the three CAS modes.

Drives a chain of CASes through CONFIGURATION (serial chain on e0/s0),
BYPASS (all wires straight through) and TEST (N/P switching with the
pairing heuristic), checking the wire-level invariants each subfigure
depicts, and timing a full configure-test-reconfigure round trip.
"""

from __future__ import annotations

from repro import values as lv
from repro.analysis.tables import format_table
from repro.core.bus import CasChain
from repro.core.cas import CoreAccessSwitch
from repro.core.instruction import InstructionSet

from conftest import emit


def _chain(count=3, n=4, p=2):
    iset = InstructionSet(n, p)
    return CasChain([CoreAccessSwitch(iset, name=f"cas{i}")
                     for i in range(count)])


def test_fig4a_configuration_mode(benchmark):
    """(a): instruction registers chained on the first bus wire."""

    def configure():
        chain = _chain()
        cycles = chain.run_configuration([5, 0, 9])
        return chain, cycles

    chain, cycles = benchmark.pedantic(configure, rounds=1, iterations=1)
    assert [cas.active_code for cas in chain.cases] == [5, 0, 9]
    assert cycles == chain.total_ir_bits() + 1
    emit(f"Figure 4a: {len(chain.cases)} CAS chain configured in "
         f"{cycles} cycles ({chain.total_ir_bits()} chain bits + update)")


def test_fig4b_bypass_mode(benchmark):
    """(b): instruction 000...0 routes every wire straight through."""
    chain = _chain()

    def bypass_route():
        stimuli = (lv.ONE, lv.ZERO, lv.ONE, lv.ZERO)
        routing = chain.route(
            stimuli, [(lv.ZERO, lv.ZERO)] * len(chain.cases)
        )
        return stimuli, routing

    stimuli, routing = benchmark.pedantic(bypass_route, rounds=1,
                                          iterations=1)
    assert routing.bus_out == stimuli
    assert all(v == lv.Z for o in routing.core_outputs for v in o)
    emit("Figure 4b: BYPASS verified -- bus transparent, core side "
         "high-impedance")


def test_fig4c_test_mode_heuristic(benchmark):
    """(c): P wires switch to the core, N-P bypass, and e_i -> o_j
    implies i_j -> s_i (one control word = one complete path)."""
    chain = _chain(count=1)
    iset = chain.cases[0].iset
    rows = []

    def check_all_schemes():
        violations = 0
        for scheme in iset.schemes:
            chain.cases[0].load_code(iset.encode(scheme))
            chain.cases[0].update()
            e = tuple(lv.ONE if w % 2 else lv.ZERO for w in range(4))
            returns = (lv.ONE, lv.ZERO)
            routing = chain.route(e, [returns])
            for port, wire in enumerate(scheme.wire_of_port):
                if routing.core_outputs[0][port] != e[wire]:
                    violations += 1
                if routing.bus_out[wire] != returns[port]:
                    violations += 1
            for wire in scheme.bypassed_wires:
                if routing.bus_out[wire] != e[wire]:
                    violations += 1
        return violations

    violations = benchmark.pedantic(check_all_schemes, rounds=1,
                                    iterations=1)
    assert violations == 0
    rows.append(("schemes checked", len(iset.schemes)))
    rows.append(("heuristic violations", violations))
    emit(format_table(("figure 4c check", "value"), rows,
                      title="Figure 4c -- TEST mode pairing heuristic"))


def test_fig4_mode_round_trip(benchmark):
    """Reconfiguration during a test session: configure, test, switch
    schemes, test again -- the dynamic behaviour figure 4 implies."""

    def round_trip():
        chain = _chain(count=2)
        iset = chain.cases[0].iset
        first = next(s for s in iset.schemes
                     if s.wire_of_port == (0, 1))
        second = next(s for s in iset.schemes
                      if s.wire_of_port == (2, 3))
        cycles = chain.run_configuration(
            [iset.encode(first), iset.encode(second)]
        )
        routing1 = chain.route(
            (lv.ONE, lv.ZERO, lv.ONE, lv.ONE),
            [(lv.ZERO, lv.ONE), (lv.ONE, lv.ZERO)],
        )
        cycles += chain.run_configuration(
            [iset.encode(second), iset.encode(first)]
        )
        routing2 = chain.route(
            (lv.ONE, lv.ZERO, lv.ONE, lv.ONE),
            [(lv.ZERO, lv.ONE), (lv.ONE, lv.ZERO)],
        )
        return cycles, routing1, routing2

    cycles, routing1, routing2 = benchmark.pedantic(round_trip, rounds=1,
                                                    iterations=1)
    assert routing1 != routing2  # the swap changed the routing
    emit(f"Figure 4 round trip: two configurations in {cycles} total "
         f"configuration cycles; routings differ as expected")
