"""The static verifier's overhead versus the work it guards.

Verification runs by default at every fail-fast boundary, so its cost
must be noise next to the runs it checks.  This benchmark takes the
itc02-d695 SoC through the cycle-accurate path once with verification
off, then times the exact checks the executor boundary performs
(system wiring + per-session program verification) and the artifact
checks guarding the model path, and asserts the boundary verifier
stays under 5% of execution.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.api import Experiment
from repro.campaign.hashing import config_hash
from repro.campaign.store import CampaignStore, make_record
from repro.core.tam import CasBusTamDesign
from repro.schedule.model import TamProblem
from repro.sim.system import build_system
from repro.verify import (
    VerifyReport,
    verify_outcome,
    verify_record,
    verify_session_programs,
    verify_store,
    verify_system,
)

from conftest import emit

WIDTH = 16


def _timed(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_verify_overhead_d695(benchmark):
    experiment = Experiment("itc02-d695-soc").with_verify(False)
    soc = experiment.build().workload.soc
    system = build_system(soc)
    plan = CasBusTamDesign.for_soc(soc).executable_plan()

    # The guarded work: one full cycle-accurate run, verification off.
    execute_s = _timed(lambda: experiment.run(), rounds=1)

    def boundary_verify():
        report = verify_system(system)
        for session in plan.sessions:
            verify_session_programs(system, session, report=report)
        report.raise_if_failed(soc.name)
        return report

    verify_s = _timed(boundary_verify)
    benchmark.pedantic(boundary_verify, rounds=3, iterations=1)

    # The model-path artifact checks, reported for scale.
    model = (Experiment("itc02-d695")
             .with_bus_width(WIDTH).simulated(False).with_verify(False))
    result = model.run()
    record = make_record(model, result, config_hash=config_hash(model))
    # cas_policy must match the experiment's (None = practical sizing)
    # or SCH007 fires on the config-cycle total -- by design.
    problem = TamProblem.of(
        model.build().workload.cores, WIDTH, cas_policy=None
    )
    outcome = model.schedule()
    with tempfile.TemporaryDirectory() as scratch:
        store = CampaignStore(Path(scratch) / "bench.jsonl")
        store.append(record)
        outcome_s = _timed(
            lambda: verify_outcome(outcome, problem).raise_if_failed()
        )
        record_s = _timed(
            lambda: verify_record(record).raise_if_failed()
        )
        store_s = _timed(
            lambda: verify_store(store).raise_if_failed()
        )

    ratio = verify_s / execute_s
    emit(format_table(
        ("pass", "ms", "% of execution"),
        [
            ("execute (cycle-accurate, verify off)",
             f"{execute_s * 1e3:.2f}", "100.000"),
            ("executor boundary (system+programs)",
             f"{verify_s * 1e3:.3f}", f"{ratio * 100:.3f}"),
            ("verify outcome (model path)",
             f"{outcome_s * 1e3:.3f}",
             f"{outcome_s / execute_s * 100:.3f}"),
            ("verify record (runner append)",
             f"{record_s * 1e3:.3f}",
             f"{record_s / execute_s * 100:.3f}"),
            ("verify store (offline audit)",
             f"{store_s * 1e3:.3f}",
             f"{store_s / execute_s * 100:.3f}"),
        ],
        title="verifier overhead, itc02-d695",
    ))
    assert ratio < 0.05, (
        f"boundary verification is {ratio * 100:.2f}% of execution "
        f"(budget: 5%)"
    )
    assert isinstance(boundary_verify(), VerifyReport)
