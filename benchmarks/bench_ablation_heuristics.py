"""Experiment A1 -- section 3.2/3.3 ablations.

Two knobs the paper mentions but does not quantify:

* "Some other heuristics are used to limit the total number m of
  combinations" -- the scheme-enumeration policies: every injective
  mapping (Table 1), order-preserving, contiguous windows, identity.
  Fewer instructions shrink k and the decoder, at the price of routing
  freedom.
* "a hardware architecture based on the use of pass transistors ...
  solve[s] the CAS area problem for large width test busses" -- the
  three implementation styles compared on every Table 1 configuration.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.area import compare_styles
from repro.core.generator import generate_cas
from repro.core.instruction import instruction_count, register_width
from repro.core.switch import POLICIES

from conftest import emit

CONFIGS = ((4, 2), (5, 3), (6, 3))


def test_policy_ablation(benchmark):
    def run():
        designs = {}
        for n, p in CONFIGS:
            for policy in POLICIES:
                designs[(n, p, policy)] = generate_cas(n, p, policy=policy)
        return designs

    designs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, p in CONFIGS:
        for policy in POLICIES:
            design = designs[(n, p, policy)]
            rows.append((
                n, p, policy, design.m, design.k,
                design.area.cell_count,
            ))
    emit(format_table(
        ("N", "P", "policy", "m", "k", "cells"),
        rows,
        title="A1 -- instruction-set restriction heuristics",
    ))
    for n, p in CONFIGS:
        cells = [designs[(n, p, policy)].area.cell_count
                 for policy in POLICIES]
        ms = [designs[(n, p, policy)].m for policy in POLICIES]
        # Policies are ordered most-free to most-restricted.
        assert ms == sorted(ms, reverse=True)
        assert cells[-1] < cells[0]


def test_policy_m_closed_forms(benchmark):
    """Closed-form m for restricted policies, large N (no enumeration)."""

    def closed_forms():
        rows = []
        for n in (8, 12, 16, 24, 32):
            p = n // 2
            rows.append((
                n, p,
                instruction_count(n, p, "order_preserving"),
                register_width(
                    instruction_count(n, p, "order_preserving")),
                instruction_count(n, p, "contiguous"),
                register_width(instruction_count(n, p, "contiguous")),
            ))
        return rows

    rows = benchmark.pedantic(closed_forms, rounds=1, iterations=1)
    emit(format_table(
        ("N", "P", "m (order-pres.)", "k", "m (contiguous)", "k"),
        rows,
        title="A1 -- restricted-policy instruction counts at widths "
              "the full policy cannot reach",
    ))
    for row in rows:
        assert row[5] <= row[3]


def test_implementation_style_ablation(benchmark):
    """Cell vs optimised-gate vs pass-transistor areas (section 3.3)."""
    table1 = ((3, 1), (4, 2), (5, 3), (6, 3), (6, 5))

    def run():
        return {key: compare_styles(generate_cas(*key)) for key in table1}

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (n, p), comparison in sorted(comparisons.items()):
        rows.append((
            n, p, comparison.m,
            f"{comparison.cell_ge:.0f}",
            f"{comparison.optimized_ge:.0f}",
            f"{comparison.pass_transistor_ge:.0f}",
        ))
    emit(format_table(
        ("N", "P", "m", "cells (GE)", "optimised (GE)",
         "pass-transistor (GE)"),
        rows,
        title="A1 -- implementation styles (section 3.3)",
    ))
    for comparison in comparisons.values():
        assert (comparison.pass_transistor_ge
                < comparison.optimized_ge
                < comparison.cell_ge)
    # The pass-transistor advantage grows with m (the paper's claim
    # that it solves the area problem for large busses).
    small = comparisons[(3, 1)]
    large = comparisons[(6, 5)]
    assert (large.cell_ge / large.pass_transistor_ge
            > small.cell_ge / small.pass_transistor_ge)
