"""Experiment F3 -- figure 3: the CAS internal architecture.

Figure 3 shows the CAS's internals: instruction register on the
``e0/s0`` serial path, update stage, minimised decoder, N/P switch with
tri-stated core-side terminals, configuration muxes.  The reproduction
generates the netlist, checks the structural inventory matches the
figure, and proves gate-level/behavioural equivalence for every
instruction.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.netlist.verify import check_combinational_equivalence
from repro.core.generator import behavioral_reference, generate_cas
from repro.core.vhdl import lint_vhdl

from conftest import emit


def _state_for_code(design, code):
    bits = design.iset.code_to_bits(code)
    state = {f"upd_{b}": bits[b] for b in range(design.k)}
    state.update({f"ir_{b}": 0 for b in range(design.k)})
    return state


def test_fig3_structural_inventory(benchmark):
    design = benchmark.pedantic(generate_cas, args=(4, 2),
                                rounds=1, iterations=1)
    nl = design.netlist
    counts = nl.cell_counts()
    sequential = {g.name for g in nl.sequential_gates()}
    rows = (
        ("instruction register stages (ir_*)",
         sum(1 for s in sequential if s.startswith("ir_")), design.k),
        ("update stage cells (upd_*)",
         sum(1 for s in sequential if s.startswith("upd_")), design.k),
        ("tri-state switch drivers", counts.get("TRIBUF", 0),
         design.n * design.p),
        ("decoder connect signals", len(design.connect_covers),
         design.n * design.p),
        ("mapped cells total", design.area.cell_count, "-"),
    )
    emit(format_table(
        ("figure 3 element", "measured", "expected"),
        rows,
        title="Figure 3 -- CAS(4,2) structural inventory",
    ))
    assert sum(1 for s in sequential if s.startswith("ir_")) == design.k
    assert sum(1 for s in sequential if s.startswith("upd_")) == design.k
    assert counts.get("TRIBUF", 0) == design.n * design.p
    report = lint_vhdl(design.vhdl)
    assert report.ok, report.issues


@pytest.mark.parametrize("n,p", [(3, 1), (4, 2)])
def test_fig3_gate_level_equivalence(benchmark, n, p):
    """Netlist == behavioural model for every instruction (timed)."""
    design = generate_cas(n, p)

    def verify_all():
        checked = 0
        for code in range(design.m):
            checked += check_combinational_equivalence(
                design.netlist,
                behavioral_reference(design, code),
                design.netlist.inputs,
                design.netlist.outputs,
                state=_state_for_code(design, code),
                samples=32,
                seed=code,
            )
        return checked

    checked = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    emit(f"Figure 3 equivalence: CAS({n},{p}) verified on {checked} "
         f"stimuli across {design.m} instructions")
    assert checked > 0
