"""Experiment C2 -- section 4: scan-chain balancing.

"In case of scanned cores, the test programmer can balance the length
of the scan chains within the test programs, in order to reduce the
test time."

Two comparisons:

* abstract: frozen unbalanced chains grouped onto wires (LPT) versus
  freely rebalanced chains, across wire counts;
* executable: the same core generated with balanced and with skewed
  chains, both actually simulated through the CAS-BUS, cycle counts
  measured (not modelled).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.soc.core import CoreSpec
from repro.soc.soc import SocSpec
from repro.schedule.timing import (
    core_test_cycles_fixed_chains,
    scan_test_cycles,
)
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system

from conftest import emit


def test_balancing_model(benchmark):
    """Abstract comparison over wire counts."""
    chains = (58, 12, 12, 8, 6, 4)  # a skewed legacy core
    total = sum(chains)
    patterns = 100

    def compare():
        rows = []
        for wires in (1, 2, 3, 4, 6):
            frozen = core_test_cycles_fixed_chains(chains, wires, patterns)
            import math

            balanced = scan_test_cycles(
                math.ceil(total / wires), patterns
            )
            rows.append((wires, frozen, balanced,
                         f"{frozen / balanced:.2f}"))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(format_table(
        ("wires", "unbalanced cycles", "balanced cycles", "penalty"),
        rows,
        title="C2 -- chain balancing (model): skewed chains "
              f"{list((58, 12, 12, 8, 6, 4))}, V=100",
    ))
    for wires, frozen, balanced, _ in rows:
        assert frozen >= balanced


def _soc_with_chains(chain_lengths):
    core = CoreSpec.scan(
        "dut", seed=77, num_ffs=sum(chain_lengths),
        num_chains=len(chain_lengths), chain_lengths=tuple(chain_lengths),
        num_pis=2, num_pos=2, atpg_max_patterns=16,
    )
    return SocSpec(name="bal", bus_width=len(chain_lengths) + 1,
                   cores=(core,))


def test_balancing_simulated(benchmark):
    """Cycle-accurate: balanced vs skewed chains on the same logic."""

    def run_both():
        results = {}
        for label, lengths in (("balanced", (10, 10, 10)),
                               ("skewed", (24, 3, 3))):
            soc = _soc_with_chains(lengths)
            system = build_system(soc)
            executor = SessionExecutor(system)
            plan = PlanBuilder().add_session(
                flat_assignment("dut", (0, 1, 2))
            ).build()
            results[label] = executor.run_plan(plan)
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    balanced = results["balanced"]
    skewed = results["skewed"]
    assert balanced.passed and skewed.passed
    emit(format_table(
        ("chains", "test cycles", "config cycles"),
        (
            ("10/10/10", balanced.test_cycles, balanced.config_cycles),
            ("24/3/3", skewed.test_cycles, skewed.config_cycles),
        ),
        title="C2 -- chain balancing, cycle-accurate simulation "
              "(30 FFs, same ATPG budget)",
    ))
    assert balanced.test_cycles < skewed.test_cycles
    emit(f"balancing saves "
         f"{skewed.test_cycles - balanced.test_cycles} cycles "
         f"({skewed.test_cycles / balanced.test_cycles:.2f}x)")
