"""Experiment T1 -- reproduce Table 1: CAS synthesis results.

For every (N, P) row of the paper's Table 1 the CAS generator is run:
instruction count ``m`` and register width ``k`` must match the paper
*exactly* (they are architectural); the synthesised gate count is
compared as a ratio (our cell library and mapper differ from the
paper's 2000-era Synopsys flow, so the shape, not the absolute count,
is the reproduction target).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.generator import generate_cas

from conftest import emit

#: The paper's Table 1: (N, P) -> (m, k, gates).
PAPER_TABLE1 = {
    (3, 1): (5, 3, 16),
    (4, 1): (6, 3, 23),
    (4, 2): (14, 4, 64),
    (4, 3): (26, 5, 118),
    (5, 1): (7, 3, 28),
    (5, 2): (22, 5, 85),
    (5, 3): (62, 6, 205),
    (6, 1): (8, 3, 33),
    (6, 2): (32, 5, 134),
    (6, 3): (122, 7, 280),
    (6, 5): (722, 10, 1154),
    (8, 4): (1682, 11, 4400),
}

#: Rows cheap enough to time individually under pytest-benchmark.
FAST_ROWS = [(3, 1), (4, 2), (5, 3), (6, 3)]


@pytest.mark.parametrize("n,p", FAST_ROWS)
def test_cas_generation_speed(benchmark, n, p):
    """Time the full generator (minimise + netlist + area) per row."""
    design = benchmark(generate_cas, n, p)
    paper_m, paper_k, _ = PAPER_TABLE1[(n, p)]
    assert design.m == paper_m
    assert design.k == paper_k


def test_full_table1_reproduction(benchmark):
    """Generate all twelve rows once and print the comparison table."""

    def build_all():
        return {
            (n, p): generate_cas(n, p) for (n, p) in PAPER_TABLE1
        }

    designs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for (n, p), (m, k, paper_gates) in sorted(PAPER_TABLE1.items()):
        design = designs[(n, p)]
        assert design.m == m, f"m mismatch at N={n} P={p}"
        assert design.k == k, f"k mismatch at N={n} P={p}"
        ours = design.area.cell_count
        rows.append(
            (n, p, m, k, paper_gates, ours, f"{ours / paper_gates:.2f}")
        )
    emit(format_table(
        ("N", "P", "m", "k", "gates(paper)", "cells(ours)", "ratio"),
        rows,
        title="Table 1 -- CAS synthesis results (m, k exact; gates as ratio)",
    ))
    # Shape assertions: monotone growth, decoder blow-up at large m.
    ratios = [designs[key].area.cell_count / PAPER_TABLE1[key][2]
              for key in PAPER_TABLE1]
    assert all(0.8 <= r <= 6.0 for r in ratios), ratios
