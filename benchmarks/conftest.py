"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one paper artefact (table, figure, or
section 4 claim) and prints the reproduced rows, so running

    pytest benchmarks/ --benchmark-only -s

produces the full paper-versus-measured record on stdout.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a report block, keeping benchmark output readable."""
    print()
    print(text)


@pytest.fixture(scope="session")
def fig1_system_result():
    """One full cycle-accurate fig-1 test program, shared by benches."""
    from repro.core.tam import CasBusTamDesign
    from repro.soc.library import fig1_soc

    tam = CasBusTamDesign.for_soc(fig1_soc())
    return tam, tam.run()
