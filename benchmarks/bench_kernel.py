"""Compiled kernel vs legacy object stepping on the simulator path.

The compile-then-execute kernel (:mod:`repro.sim.kernel`) exists for
one reason: the cycle-accurate simulator is the reproduction's hot
path, and per-cycle Python dispatch does not scale to ITC'02-sized
workload sweeps.  This benchmark runs identical test programs through
both backends, asserts the results are byte-identical, and reports the
wall-clock ratio -- the PR-gating target is >= 5x on the fig-1 SoC.
"""

from __future__ import annotations

import os
import time

from repro.analysis.tables import format_table
from repro.core.tam import CasBusTamDesign
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.itc02 import benchmark_soc
from repro.soc.library import fig1_soc

from conftest import emit

#: Required kernel-vs-legacy ratio.  5x on a quiet machine (the PR
#: gate); CI smoke jobs on noisy shared runners export a lower
#: KERNEL_SPEEDUP_GATE so scheduler jitter cannot flake the build
#: while gross regressions still trip it.
SPEEDUP_GATE = float(os.environ.get("KERNEL_SPEEDUP_GATE", "5.0"))


def _time_backend(soc, plan, backend, repeats):
    """Mean seconds per plan execution on a fresh system.

    System construction (identical for both backends and untouched by
    the kernel refactor) happens outside the timed region; shared
    caches (ATPG, compiled programs) are warmed first so both backends
    are measured steady-state.
    """
    SessionExecutor(build_system(soc), backend=backend).run_plan(plan)
    elapsed = 0.0
    for _ in range(repeats):
        executor = SessionExecutor(build_system(soc), backend=backend)
        start = time.perf_counter()
        result = executor.run_plan(plan)
        elapsed += time.perf_counter() - start
    return elapsed / repeats, result


def _compare_backends(soc, repeats=3):
    tam = CasBusTamDesign.for_soc(soc)
    plan = tam.executable_plan()
    legacy_s, legacy_result = _time_backend(soc, plan, "legacy", repeats)
    kernel_s, kernel_result = _time_backend(soc, plan, "kernel", repeats)
    assert kernel_result == legacy_result, "backends diverged"
    assert kernel_result.passed
    return legacy_s, kernel_s, kernel_result


def test_kernel_speedup_fig1(benchmark):
    soc = fig1_soc()

    def run():
        return _compare_backends(soc)

    legacy_s, kernel_s, result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = legacy_s / kernel_s
    emit(format_table(
        ("backend", "ms / program", "cycles", "speedup"),
        [
            ("legacy", f"{legacy_s * 1e3:.2f}", result.total_cycles, "1.0x"),
            ("kernel", f"{kernel_s * 1e3:.2f}", result.total_cycles,
             f"{speedup:.1f}x"),
        ],
        title="compiled kernel vs object stepping -- fig-1 SoC",
    ))
    assert speedup >= SPEEDUP_GATE, (
        f"kernel speedup {speedup:.1f}x < {SPEEDUP_GATE}x"
    )


def test_kernel_speedup_itc02(benchmark):
    """Same comparison on an ITC'02-proportioned simulatable SoC."""
    soc = benchmark_soc("d695")

    def run():
        return _compare_backends(soc)

    legacy_s, kernel_s, result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedup = legacy_s / kernel_s
    emit(format_table(
        ("backend", "ms / program", "cycles", "speedup"),
        [
            ("legacy", f"{legacy_s * 1e3:.2f}", result.total_cycles, "1.0x"),
            ("kernel", f"{kernel_s * 1e3:.2f}", result.total_cycles,
             f"{speedup:.1f}x"),
        ],
        title="compiled kernel vs object stepping -- itc02_d695 SoC",
    ))
    assert speedup >= SPEEDUP_GATE, (
        f"kernel speedup {speedup:.1f}x < {SPEEDUP_GATE}x"
    )


def test_kernel_executor_reuse(benchmark):
    """Steady-state execution on one executor: compiled programs and
    configuration plans are reused across runs."""
    soc = benchmark_soc("g1023")
    tam = CasBusTamDesign.for_soc(soc)
    plan = tam.executable_plan()
    executor = SessionExecutor(build_system(soc), backend="kernel")
    executor.run_plan(plan)  # warm

    result = benchmark(lambda: executor.run_plan(plan))
    assert result.passed
    emit(f"itc02_g1023 steady-state kernel run: "
         f"{result.total_cycles} cycles/program")
