"""Experiment A3 -- optimiser quality: co-optimisation vs greedy.

The scheduling refactor's payoff claim: the annealed width/session
optimiser (`optimize-anneal`) strictly beats the greedy session packer
on real ITC'02-style workloads, and the exact branch-and-bound
(`optimize-bnb`) provably matches exhaustive enumeration on every
small fixture.  Both run through the shared
:class:`~repro.schedule.model.CostModel`, so the comparison cannot be
an artefact of diverging cycle bookkeeping.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.soc.itc02 import d695_like, g1023_like, p22810_like, h953_like
from repro.schedule.optimize import optimize_anneal, optimize_bnb
from repro.schedule.scheduler import (
    lower_bound,
    schedule_exhaustive,
    schedule_greedy,
)
from repro.soc.itc02 import random_test_params

from conftest import emit

WORKLOADS = {
    "d695": d695_like,
    "g1023": g1023_like,
    "p22810": p22810_like,
    "h953": h953_like,
}


def test_anneal_beats_greedy(benchmark):
    """Acceptance gate: anneal wins on at least two ITC'02 workloads."""
    widths = (16, 32)

    def sweep():
        rows = []
        for name, factory in WORKLOADS.items():
            cores = factory()
            for n in widths:
                greedy = schedule_greedy(cores, n)
                annealed = optimize_anneal(cores, n, widths=(n,))
                bound = lower_bound(cores, n)
                rows.append((
                    name, n, bound,
                    greedy.total_cycles, annealed.total_cycles,
                    f"{(greedy.total_cycles - annealed.total_cycles) / greedy.total_cycles:7.2%}",
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "N", "bound", "greedy", "anneal", "anneal win"),
        rows,
        title="A3 -- annealed co-optimisation vs greedy packing",
    ))
    winners = set()
    for name, n, bound, greedy_total, anneal_total, _ in rows:
        # Never worse than greedy, never better than the sound bound.
        assert anneal_total <= greedy_total
        assert anneal_total >= bound
        if anneal_total < greedy_total:
            winners.add(name)
    assert len(winners) >= 2, f"anneal only beat greedy on {winners}"


def test_bnb_proves_optimality(benchmark):
    """`optimize-bnb` equals exhaustive total cycles on every fixture."""
    fixtures = [
        ("d695-head", d695_like()[:5]),
        ("g1023-head", g1023_like()[:6]),
        ("random-a", random_test_params(7, num_cores=6)),
        ("random-b", random_test_params(99, num_cores=5)),
    ]
    widths = (2, 4, 8)

    def sweep():
        rows = []
        for name, cores in fixtures:
            for n in widths:
                exact = schedule_exhaustive(cores, n)
                bnb = optimize_bnb(cores, n, widths=(n,))
                rows.append((
                    name, n, exact.total_cycles,
                    bnb.schedule.total_cycles, bnb.evaluations,
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("fixture", "N", "exhaustive", "bnb", "evaluations"),
        rows,
        title="A3 -- branch-and-bound optimality certificates",
    ))
    for name, n, exhaustive_total, bnb_total, _ in rows:
        assert bnb_total == exhaustive_total, (name, n)
