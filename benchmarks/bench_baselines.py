"""Experiment C5 -- section 1/4: CAS-BUS against the other TAM styles.

The paper positions CAS-BUS against system-bus TAMs [3], merged
wrapper/TAM test buses [4], multiplexed test buses [5] and implicitly
against daisy chains and direct access.  All architectures run on the
same workloads through the :mod:`repro.api` experiment layer -- one
registry, one :class:`~repro.api.results.RunResult` shape -- and the
reproduction target is the qualitative ordering (who wins, where, at
what pin/area cost), not absolute cycle counts.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import (
    BASELINE_ORDER,
    Experiment,
    run_many,
    run_sweep,
)
from repro.soc.itc02 import d695_like, random_test_params

from conftest import emit


def test_baseline_comparison(benchmark):
    cores = d695_like()
    bus_width = 8

    def evaluate_all():
        return run_many(
            [
                Experiment(cores)
                .with_architecture(key)
                .with_bus_width(bus_width)
                for key in BASELINE_ORDER
            ],
            parallel=False,
        )

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [
        (r.architecture, r.test_cycles, r.config_cycles, r.extra_pins,
         f"{r.area_ge:.0f}")
        for r in sorted(results, key=lambda r: r.total_cycles)
    ]
    emit(format_table(
        ("architecture", "test cycles", "config", "extra pins",
         "area proxy (GE)"),
        rows,
        title=f"C5 -- TAM architectures on the d695-like SoC, N={bus_width}",
    ))
    by_name = {r.architecture: r for r in results}
    # Qualitative ordering claims:
    assert by_name["direct-access"].test_cycles <= min(
        r.test_cycles for r in results
    )
    assert by_name["daisy-chain"].test_cycles == max(
        r.test_cycles for r in results
    )
    assert (by_name["casbus"].test_cycles
            < by_name["mux-bus"].test_cycles)
    assert (by_name["casbus"].test_cycles
            <= by_name["static-distribution"].test_cycles)
    assert (by_name["casbus"].extra_pins
            < by_name["direct-access"].extra_pins)


def test_crossover_with_width(benchmark):
    """Where the architectures cross over as the pin budget moves."""
    cores = random_test_params(7, num_cores=10)
    widths = (1, 2, 4, 8, 16, 32)

    def sweep():
        return run_sweep(
            cores,
            architectures=BASELINE_ORDER,
            bus_widths=widths,
            parallel=True,
        )

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {(r.architecture, r.bus_width): r for r in results}
    rows = [
        [n] + [by_key[key, n].total_cycles for key in BASELINE_ORDER]
        for n in widths
    ]
    headers = ["N"] + list(BASELINE_ORDER)
    emit(format_table(headers, rows,
                      title="C5 -- total cycles vs pin budget "
                            "(random 10-core workload)"))
    # At generous widths the flexible bus closes on direct access.
    widest = max(widths)
    assert (by_key["casbus", widest].total_cycles
            <= 1.6 * by_key["direct-access", widest].total_cycles)
