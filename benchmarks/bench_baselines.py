"""Experiment C5 -- section 1/4: CAS-BUS against the other TAM styles.

The paper positions CAS-BUS against system-bus TAMs [3], merged
wrapper/TAM test buses [4], multiplexed test buses [5] and implicitly
against daisy chains and direct access.  All baselines run on the same
workloads under one timing interface; the reproduction target is the
qualitative ordering (who wins, where, at what pin/area cost), not
absolute cycle counts.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.baselines import all_baselines
from repro.soc.itc02 import d695_like, random_test_params

from conftest import emit


def test_baseline_comparison(benchmark):
    cores = d695_like()
    bus_width = 8

    def evaluate_all():
        return [b.evaluate(cores, bus_width) for b in all_baselines()]

    reports = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [
        (r.name, r.test_cycles, r.config_cycles, r.extra_pins,
         f"{r.area_proxy:.0f}")
        for r in sorted(reports, key=lambda r: r.total_cycles)
    ]
    emit(format_table(
        ("architecture", "test cycles", "config", "extra pins",
         "area proxy (GE)"),
        rows,
        title=f"C5 -- TAM architectures on the d695-like SoC, N={bus_width}",
    ))
    by_name = {r.name: r for r in reports}
    # Qualitative ordering claims:
    assert by_name["direct-access"].test_cycles <= min(
        r.test_cycles for r in reports
    )
    assert by_name["daisy-chain"].test_cycles == max(
        r.test_cycles for r in reports
    )
    assert (by_name["cas-bus"].test_cycles
            < by_name["mux-bus"].test_cycles)
    assert (by_name["cas-bus"].test_cycles
            <= by_name["static-distribution"].test_cycles)
    assert (by_name["cas-bus"].extra_pins
            < by_name["direct-access"].extra_pins)


def test_crossover_with_width(benchmark):
    """Where the architectures cross over as the pin budget moves."""
    cores = random_test_params(7, num_cores=10)

    def sweep():
        rows = []
        for n in (1, 2, 4, 8, 16, 32):
            row = [n]
            for baseline in all_baselines():
                row.append(baseline.evaluate(cores, n).total_cycles)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    headers = ["N"] + [b.name for b in all_baselines()]
    emit(format_table(headers, rows,
                      title="C5 -- total cycles vs pin budget "
                            "(random 10-core workload)"))
    # At generous widths the flexible bus closes on direct access.
    names = [b.name for b in all_baselines()]
    cas_index = names.index("cas-bus") + 1
    direct_index = names.index("direct-access") + 1
    widest = rows[-1]
    assert widest[cas_index] <= 1.6 * widest[direct_index]
