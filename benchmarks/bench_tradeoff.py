"""Experiment C1 -- sections 3.2/3.3/4: the bus-width trade-off.

"A trade-off should be made on the value of N: the larger is the width
of the test bus (N), the shorter is the overall test time. ... when
the width of the test bus becomes important, the induced CAS-BUS
overhead can be significant.  A good trade-off ... allows to choose an
optimal width for the test bus."

Sweeps N on the d695-proportioned workload through the
:mod:`repro.api` experiment layer: test time falls with N, CAS-BUS
area rises with N, and the area x time product exposes an interior
optimum.

The scheme-enumeration policy is pinned to ``contiguous`` across the
sweep so the area trend reflects bus width, not the discrete policy
switches a designer would apply per configuration (the auto rule is
exercised in C5 and A1).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import Experiment, RunConfig, run_sweep
from repro.soc.itc02 import d695_like

from conftest import emit

WIDTHS = (2, 3, 4, 6, 8, 12, 16)


def test_bus_width_tradeoff(benchmark):
    cores = d695_like()

    def sweep_widths():
        results = run_sweep(
            cores,
            architectures=("casbus",),
            bus_widths=WIDTHS,
            base_config=RunConfig(cas_policy="contiguous"),
            parallel=True,
        )
        return {result.bus_width: result for result in results}

    reports = benchmark.pedantic(sweep_widths, rounds=1, iterations=1)
    rows = []
    products = {}
    for n in WIDTHS:
        report = reports[n]
        product = report.total_cycles * report.area_ge
        products[n] = product
        rows.append((
            n,
            report.test_cycles,
            report.config_cycles,
            f"{report.area_ge:.0f}",
            f"{product / 1e9:.2f}",
        ))
    emit(format_table(
        ("N", "test cycles", "config cycles", "TAM area (GE)",
         "area x time (1e9)"),
        rows,
        title="C1 -- bus width trade-off on the d695-like SoC",
    ))
    times = [reports[n].test_cycles for n in WIDTHS]
    areas = [reports[n].area_ge for n in WIDTHS]
    # Paper claims: time monotone down, area monotone up...
    assert times == sorted(times, reverse=True)
    assert areas == sorted(areas)
    # ...and an interior optimum exists for the combined cost.
    best = min(products, key=products.get)
    assert best not in (WIDTHS[0], WIDTHS[-1]), (
        f"optimal width {best} sits at the sweep edge"
    )
    emit(f"optimal width by area x time: N = {best}")


def test_config_overhead_negligible_once(benchmark):
    """Section 3.3: 'the width of the CAS instruction register, even
    when it is large, does not affect the test time, since the SoC test
    architecture configuration will only occur once'."""
    cores = d695_like()
    experiment = (Experiment(cores)
                  .with_architecture("casbus")
                  .with_policy("contiguous"))

    def fractions():
        result = {}
        for n in (4, 8, 16):
            report = experiment.with_bus_width(n).evaluate()
            result[n] = report.config_cycles / report.total_cycles
        return result

    result = benchmark.pedantic(fractions, rounds=1, iterations=1)
    emit(format_table(
        ("N", "config fraction"),
        [(n, f"{frac:.4%}") for n, frac in sorted(result.items())],
        title="C1 -- configuration overhead fraction of total test time",
    ))
    assert all(frac < 0.02 for frac in result.values())
