"""Experiment C1 -- sections 3.2/3.3/4: the bus-width trade-off.

"A trade-off should be made on the value of N: the larger is the width
of the test bus (N), the shorter is the overall test time. ... when
the width of the test bus becomes important, the induced CAS-BUS
overhead can be significant.  A good trade-off ... allows to choose an
optimal width for the test bus."

Sweeps N on the d695-proportioned workload: test time falls with N,
CAS-BUS area rises with N, and the area x time product exposes an
interior optimum.

The scheme-enumeration policy is pinned to ``contiguous`` across the
sweep so the area trend reflects bus width, not the discrete policy
switches a designer would apply per configuration (the auto rule is
exercised in C5 and A1).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.baselines.casbus import CasBusTam
from repro.soc.itc02 import d695_like

from conftest import emit

WIDTHS = (2, 3, 4, 6, 8, 12, 16)


def test_bus_width_tradeoff(benchmark):
    cores = d695_like()
    tam = CasBusTam(policy="contiguous")

    def sweep_widths():
        return {n: tam.evaluate(cores, n) for n in WIDTHS}

    reports = benchmark.pedantic(sweep_widths, rounds=1, iterations=1)
    rows = []
    products = {}
    for n in WIDTHS:
        report = reports[n]
        product = report.total_cycles * report.area_proxy
        products[n] = product
        rows.append((
            n,
            report.test_cycles,
            report.config_cycles,
            f"{report.area_proxy:.0f}",
            f"{product / 1e9:.2f}",
        ))
    emit(format_table(
        ("N", "test cycles", "config cycles", "TAM area (GE)",
         "area x time (1e9)"),
        rows,
        title="C1 -- bus width trade-off on the d695-like SoC",
    ))
    times = [reports[n].test_cycles for n in WIDTHS]
    areas = [reports[n].area_proxy for n in WIDTHS]
    # Paper claims: time monotone down, area monotone up...
    assert times == sorted(times, reverse=True)
    assert areas == sorted(areas)
    # ...and an interior optimum exists for the combined cost.
    best = min(products, key=products.get)
    assert best not in (WIDTHS[0], WIDTHS[-1]), (
        f"optimal width {best} sits at the sweep edge"
    )
    emit(f"optimal width by area x time: N = {best}")


def test_config_overhead_negligible_once(benchmark):
    """Section 3.3: 'the width of the CAS instruction register, even
    when it is large, does not affect the test time, since the SoC test
    architecture configuration will only occur once'."""
    cores = d695_like()

    def fractions():
        result = {}
        for n in (4, 8, 16):
            report = CasBusTam(policy="contiguous").evaluate(cores, n)
            result[n] = report.config_cycles / report.total_cycles
        return result

    result = benchmark.pedantic(fractions, rounds=1, iterations=1)
    emit(format_table(
        ("N", "config fraction"),
        [(n, f"{frac:.4%}") for n, frac in sorted(result.items())],
        title="C1 -- configuration overhead fraction of total test time",
    ))
    assert all(frac < 0.02 for frac in result.values())
