"""Campaign store overhead and the price of resume.

The campaign layer's value proposition is "unchanged configs are
free": a resumed campaign must cost hashing + one store read, not
re-execution.  This benchmark runs the same grid cold (everything
executes, every record fsynced) and resumed (everything cached) and
reports both, asserting the resumed pass actually skips the work and
is decisively faster.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.analysis.tables import format_table
from repro.campaign import Campaign

from conftest import emit

GRID = dict(
    architectures=("casbus", "mux-bus", "daisy-chain", "direct-access"),
    bus_widths=(4, 8, 16, 32),
    schedulers=("greedy", "balanced-lpt"),
)


def _campaign(store_dir) -> Campaign:
    return Campaign.sweep(
        "bench", ["itc02-d695"], store_dir=store_dir, **GRID
    )


def test_campaign_resume_overhead(benchmark):
    with tempfile.TemporaryDirectory() as scratch:
        store_dir = Path(scratch)

        start = time.perf_counter()
        cold = _campaign(store_dir).run(parallel=False)
        cold_s = time.perf_counter() - start
        assert cold.executed == cold.total

        def resume():
            return _campaign(store_dir).run(parallel=False)

        warm = benchmark.pedantic(resume, rounds=3, iterations=1)
        start = time.perf_counter()
        timed = _campaign(store_dir).run(parallel=False)
        warm_s = time.perf_counter() - start

        assert warm.executed == 0 and warm.cached == warm.total
        assert timed.results == cold.results
        speedup = cold_s / warm_s if warm_s else float("inf")
        emit(format_table(
            ("pass", "runs executed", "ms"),
            [
                ("cold (execute + fsync)", cold.executed,
                 f"{cold_s * 1e3:.1f}"),
                ("resumed (all cached)", warm.executed,
                 f"{warm_s * 1e3:.1f}"),
            ],
            title=f"campaign resume on a {cold.total}-run grid "
                  f"({speedup:.1f}x)",
        ))
        # Resume must skip execution, not merely tie: demand a clear win.
        assert warm_s < cold_s, "resumed pass should be faster than cold"


def test_sharded_campaign_equals_unsharded(benchmark):
    """Shard fan-out + merge reproduces the unsharded store -- and the
    split work is what gets cheaper per worker."""
    from repro.campaign import merge_stores

    with tempfile.TemporaryDirectory() as scratch:
        store_dir = Path(scratch)
        full = _campaign(store_dir).run(parallel=False)

        def run_shards():
            reports = []
            for index in (1, 2):
                shard = Campaign.sweep(
                    f"shard{index}", ["itc02-d695"],
                    store_dir=store_dir / "shards", **GRID
                )
                reports.append(shard.run(shard=(index, 2), parallel=False))
            return reports

        reports = benchmark.pedantic(run_shards, rounds=1, iterations=1)
        merged = merge_stores(
            [store_dir / "shards" / f"shard{index}.jsonl" for index in (1, 2)],
            store_dir / "merged.jsonl",
        )
        assert sum(r.selected for r in reports) == full.total
        full_store = _campaign(store_dir).store
        assert merged.results() == full_store.results()
        emit(f"2-way shard of {full.total} runs: "
             f"{[r.selected for r in reports]} runs per worker, "
             f"merge == unsharded")
