"""Experiment A4 -- parallel portfolio quality and scaling.

The portfolio PR's payoff claims, gated on every ITC'02-style table
including the industrial p93791/t512505-class additions:

* `optimize-portfolio` is never worse than greedy packing anywhere and
  carries a branch-and-bound optimality certificate wherever exact
  search reaches (``exact_limit = BNB_MAX_CORES``);
* at equal wall-clock under the 8-worker model (every unit of a round
  runs concurrently, so the round costs one unit budget), the diverse
  multi-start portfolio beats single-start `optimize_anneal` on the
  industrial tables -- by >=10% on at least one;
* search-throughput scales: the round-barrier schedule built from
  *measured* per-unit times keeps the modelled 8-worker wall-clock
  well under the serial sweep (units are independent between
  barriers, so parallel efficiency is bounded only by unit balance).

Everything is seeded through `SeedStream`, so every number below is
deterministic -- the gates are exact comparisons, not noise bands.
"""

from __future__ import annotations

from time import perf_counter

from repro.analysis.tables import format_table
from repro.schedule.optimize import BNB_MAX_CORES, optimize_anneal, optimize_bnb
from repro.schedule.portfolio import PortfolioSpec, optimize_portfolio
from repro.schedule.scheduler import schedule_greedy
from repro.soc import itc02

from conftest import emit

#: Industrial fixtures for the quality-versus-anneal gate.
INDUSTRIAL = ("t512505", "p93791")

#: Per-unit move budget for the equal-wall-clock comparison.
_UNIT_BUDGET = 1600


def test_portfolio_beats_greedy_on_every_table(benchmark):
    """Greedy floor everywhere; bnb certificates where exact reaches."""
    width = 16
    spec = PortfolioSpec(starts=1, rounds=2, exact_limit=BNB_MAX_CORES)

    def sweep():
        rows = []
        for name in itc02.benchmark_names():
            cores = itc02.workload(name)
            greedy = schedule_greedy(cores, width)
            outcome = optimize_portfolio(
                cores, width, widths=(width,), spec=spec, budget=1500,
                seed=0,
            )
            certified = width in outcome.cache_stats["certified_widths"]
            exact_total = (
                optimize_bnb(cores, width, widths=(width,)).total_cycles
                if len(cores) <= BNB_MAX_CORES else None
            )
            rows.append((
                name, len(cores), greedy.total_cycles,
                outcome.total_cycles,
                exact_total if exact_total is not None else "-",
                "yes" if certified else "no",
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "cores", "greedy", "portfolio", "bnb", "certified"),
        rows,
        title="A4 -- portfolio vs greedy across the ITC'02 family",
    ))
    strict_wins = 0
    for name, cores, greedy_total, portfolio_total, exact, certified in rows:
        assert portfolio_total <= greedy_total, name
        if portfolio_total < greedy_total:
            strict_wins += 1
        if exact != "-":
            # Within exact reach the spec adds a bnb unit, so the
            # portfolio's answer is certified optimal, not just good.
            assert certified == "yes", name
            assert portfolio_total == exact, name
    assert strict_wins >= 4, f"portfolio only improved {strict_wins} tables"


def test_portfolio_beats_single_start_anneal(benchmark):
    """Equal wall-clock, 8-worker model: with >= 8 workers every unit
    of the single round runs concurrently, so the portfolio's
    wall-clock equals one unit budget -- the same budget the
    single-start anneal gets."""
    width = 32
    spec = PortfolioSpec(rounds=1, iterations=_UNIT_BUDGET)

    def sweep():
        rows = []
        for name in INDUSTRIAL:
            cores = itc02.workload(name)
            single = optimize_anneal(
                cores, width, widths=(width,), iterations=_UNIT_BUDGET,
                seed=0,
            )
            portfolio = optimize_portfolio(
                cores, width, widths=(width,), spec=spec, seed=0,
            )
            win = (single.total_cycles - portfolio.total_cycles) \
                / single.total_cycles
            rows.append((
                name, len(cores), single.total_cycles,
                portfolio.total_cycles, f"{win:7.2%}",
            ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "cores", "single anneal", "portfolio", "portfolio win"),
        rows,
        title="A4 -- portfolio vs single-start anneal, equal wall-clock",
    ))
    best_win = 0.0
    for name, cores, single_total, portfolio_total, _ in rows:
        assert portfolio_total < single_total, name
        best_win = max(
            best_win, (single_total - portfolio_total) / single_total
        )
    assert best_win >= 0.10, f"best portfolio win only {best_win:.2%}"


def test_portfolio_scaling_model(benchmark):
    """Near-linear throughput scaling, from measured unit times.

    Each strategy's unit is timed in isolation, then the round-barrier
    schedule is replayed under W workers (longest-processing-time
    assignment).  The modelled 8-worker wall-clock must stay well
    below the measured serial sweep: units never synchronise inside a
    round, so the only scaling loss is unit-time imbalance.
    """
    cores = itc02.workload("p93791")
    width = 32
    full = PortfolioSpec(rounds=1, iterations=_UNIT_BUDGET)

    def measure():
        started = perf_counter()
        outcome = optimize_portfolio(
            cores, width, widths=(width,), spec=full, seed=0,
        )
        serial_s = perf_counter() - started
        unit_times = []
        for strategy in full.strategies:
            solo = PortfolioSpec(
                strategies=(strategy,), starts=1, rounds=1,
                iterations=_UNIT_BUDGET,
            )
            started = perf_counter()
            optimize_portfolio(
                cores, width, widths=(width,), spec=solo, seed=0,
            )
            # Two starts per strategy in the full spec, one timing each.
            unit_times += [perf_counter() - started] * full.starts
        return serial_s, unit_times, outcome.evaluations

    serial_s, unit_times, evaluations = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    def modelled(workers: int) -> float:
        loads = [0.0] * workers
        for unit in sorted(unit_times, reverse=True):
            loads[loads.index(min(loads))] += unit
        return max(loads)

    rows = [
        (
            workers,
            f"{modelled(workers):.2f}",
            f"{serial_s / modelled(workers):4.2f}x",
            f"{evaluations / modelled(workers):,.0f}",
        )
        for workers in (1, 2, 4, 8)
    ]
    emit(format_table(
        ("workers", "modelled wall-clock s", "speedup", "evals/s"),
        rows,
        title=(
            "A4 -- round-barrier scaling model "
            f"(measured serial sweep {serial_s:.2f}s)"
        ),
    ))
    assert serial_s / modelled(8) >= 2.0, unit_times
    # More workers never slow the modelled schedule down.
    assert modelled(8) <= modelled(4) <= modelled(2) <= modelled(1)
