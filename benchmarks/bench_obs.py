"""Observability overhead: near-free disabled, cheap when tracing.

``repro.obs`` instruments every hot path (executor phases, batch
dispatches, cache events), which is only acceptable if the
instrumentation is close to free.  Two gates:

* disabled, the combined cost of every span/metric site a traced run
  touches stays under ``OBS_DISABLED_GATE`` percent of that run's
  wall time (default 2%) -- a disabled site is one global read plus
  an identity check;
* enabled with an in-memory sink, the same cycle-accurate run slows
  down by at most ``OBS_ENABLED_GATE`` percent (default 10%).

CI smoke jobs on shared runners export looser gates (jitter must not
flake the build); the defaults are the local PR gate.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.analysis.tables import format_table
from repro.core.tam import CasBusTamDesign
from repro.obs import MemorySink
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import fig1_soc

from conftest import emit

DISABLED_GATE_PCT = float(os.environ.get("OBS_DISABLED_GATE", "2.0"))
ENABLED_GATE_PCT = float(os.environ.get("OBS_ENABLED_GATE", "10.0"))

#: Per-sample executions / timed samples: the comparison uses the best
#: sample, so scheduler noise inflates neither side.
RUNS_PER_SAMPLE = 3
SAMPLES = 7


def _plan_and_soc():
    soc = fig1_soc()
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    return soc, plan


def _best_sample_seconds(soc, plan) -> float:
    """Best-of-N seconds for RUNS_PER_SAMPLE plan executions."""
    best = float("inf")
    for _ in range(SAMPLES):
        start = time.perf_counter()
        for _ in range(RUNS_PER_SAMPLE):
            executor = SessionExecutor(build_system(soc),
                                       backend="kernel")
            executor.run_plan(plan)
        best = min(best, time.perf_counter() - start)
    return best


def _event_counts(soc, plan) -> "tuple[int, int]":
    """(spans, metric events) one plan execution emits when traced."""
    with obs.capture() as collector:
        SessionExecutor(build_system(soc),
                        backend="kernel").run_plan(plan)
    snapshot = collector.metrics.snapshot()
    metric_events = sum(snapshot["counters"].values()) + sum(
        entry["count"] for entry in snapshot["histograms"].values()
    )
    return len(collector.spans()), metric_events


def _per_call_disabled_cost() -> "tuple[float, float]":
    """Seconds per disabled span / disabled metric call."""
    assert not obs.enabled()
    loops = 20_000
    start = time.perf_counter()
    for _ in range(loops):
        with obs.span("bench.noop", item=1):
            pass
    span_cost = (time.perf_counter() - start) / loops
    start = time.perf_counter()
    for _ in range(loops):
        obs.counter("bench.noop").inc()
    metric_cost = (time.perf_counter() - start) / loops
    return span_cost, metric_cost


def test_disabled_sites_are_near_free(benchmark):
    """The instrumentation footprint of an untraced run is < 2%."""
    obs.shutdown()
    soc, plan = _plan_and_soc()

    def run():
        _best_sample_seconds(soc, plan)  # cache warmup
        run_s = _best_sample_seconds(soc, plan) / RUNS_PER_SAMPLE
        spans, metric_events = _event_counts(soc, plan)
        obs.shutdown()
        span_cost, metric_cost = _per_call_disabled_cost()
        footprint_s = spans * span_cost + metric_events * metric_cost
        return run_s, spans, metric_events, footprint_s

    run_s, spans, metric_events, footprint_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    share_pct = 100.0 * footprint_s / run_s
    emit(format_table(
        ("quantity", "value"),
        [
            ("run wall time", f"{run_s * 1e3:.2f} ms"),
            ("span sites hit", str(spans)),
            ("metric events", str(metric_events)),
            ("disabled footprint", f"{footprint_s * 1e6:.1f} us"),
            ("share of run", f"{share_pct:.3f} %"),
        ],
        title="disabled observability footprint -- fig-1 SoC",
    ))
    assert share_pct <= DISABLED_GATE_PCT, (
        f"disabled obs footprint {share_pct:.2f}% "
        f"> {DISABLED_GATE_PCT}% of the run"
    )


def test_enabled_tracing_overhead(benchmark):
    """A full in-memory trace costs <= 10% on the simulator path."""
    obs.shutdown()
    soc, plan = _plan_and_soc()

    def run():
        _best_sample_seconds(soc, plan)  # cache warmup
        plain_s = _best_sample_seconds(soc, plan)
        with obs.capture(sinks=[MemorySink()]):
            traced_s = _best_sample_seconds(soc, plan)
        return plain_s, traced_s

    plain_s, traced_s = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_pct = 100.0 * (traced_s - plain_s) / plain_s
    emit(format_table(
        ("mode", "ms / sample", "overhead"),
        [
            ("disabled", f"{plain_s * 1e3:.2f}", "--"),
            ("tracing", f"{traced_s * 1e3:.2f}",
             f"{overhead_pct:+.1f} %"),
        ],
        title="tracing overhead (MemorySink) -- fig-1 SoC",
    ))
    assert overhead_pct <= ENABLED_GATE_PCT, (
        f"tracing overhead {overhead_pct:.1f}% > {ENABLED_GATE_PCT}%"
    )
