"""Experiment F2 -- figure 2: the four supported core test types.

One scenario per subfigure, each applying real test data through a CAS
and deciding pass/fail, plus a fault-injected twin proving the test
actually discriminates:

(a) scannable core, P = number of scan chains;
(b) BISTed core, P = 1;
(c) external LFSR source / MISR sink, P = 1;
(d) hierarchical core, P = inner bus width, inner cores CASed.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.bist.engine import random_detectable_fault
from repro.soc.core import CoreSpec
from repro.soc.library import fig1_soc
from repro.soc.soc import SocSpec
from repro.sim.plan import CoreAssignment, PlanBuilder
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system

from conftest import emit

_SOC = fig1_soc()

_SCENARIOS = {
    "fig2a-scan": (("core1",), ((0, 1, 2),)),
    "fig2b-bist": (("core3",), ((0,),)),
    "fig2c-external": (("core4",), ((0,),)),
    "fig2d-hierarchical": (("core5", "core5b"), ((0, 1), (0, 1))),
}


def _run_one(name, inject=None):
    path, levels = _SCENARIOS[name]
    system = build_system(_SOC, inject_faults=inject or {})
    executor = SessionExecutor(system)
    plan = PlanBuilder().add_session(
        CoreAssignment(path=path, levels=levels), label=name
    ).build()
    return executor.run_plan(plan)


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_fig2_test_type(benchmark, name):
    result = benchmark.pedantic(_run_one, args=(name,),
                                rounds=1, iterations=1)
    assert result.passed
    core = result.core_results()[0]
    emit(format_table(
        ("scenario", "core", "P", "result", "bits", "detail"),
        ((name, core.name,
          len(_SCENARIOS[name][1][-1]),
          "pass", core.bits_compared, core.detail),),
        title=f"Figure 2 scenario {name}",
    ))


def test_fig2_fault_discrimination(benchmark):
    """Each test type catches an injected fault in its core."""
    faults = {
        "fig2a-scan": "core1",
        "fig2b-bist": "core3",
        "fig2c-external": "core4",
        "fig2d-hierarchical": "core5/core5b",
    }

    def run_all():
        rows = []
        for name, target in sorted(faults.items()):
            spec = _spec_at(target)
            fault = random_detectable_fault(spec.build_scannable(),
                                            seed=11)
            result = _run_one(name, inject={target: fault})
            core = result.core_results()[0]
            rows.append((name, target, f"SA{fault[1]}@n{fault[0]}",
                         "detected" if not core.passed else "MISSED"))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, target, _, outcome in rows:
        assert outcome == "detected", (name, target)
    emit(format_table(
        ("scenario", "faulty core", "fault", "outcome"),
        rows,
        title="Figure 2 -- fault discrimination per test type",
    ))


def _spec_at(path: str) -> CoreSpec:
    soc: SocSpec = _SOC
    parts = path.split("/")
    spec = soc.core_named(parts[0])
    for name in parts[1:]:
        assert spec.inner is not None
        spec = spec.inner.core_named(name)
    return spec
