"""Experiment C3 -- section 4/5: dynamic reconfiguration between
sessions.

"Thanks to the CAS reconfigurability, the CAS-BUS architecture can be
easily modified, even during test sessions, in order to optimize test
performances. ... Different TAM architectures can be addressed, in
sequential order, within the same test program."

Compares a reconfigured CAS-BUS (fresh wire assignment per session,
serial reconfiguration charged) against a statically partitioned TAM on
the same workloads, and measures reconfiguration cost cycle-accurately
on the simulated figure-1 SoC.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.soc.itc02 import d695_like, random_test_params
from repro.schedule.reconfig import compare_reconfiguration
from repro.soc.library import small_soc
from repro.sim.plan import PlanBuilder, flat_assignment
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system

from conftest import emit


def test_reconfiguration_vs_static(benchmark):
    workloads = {
        "d695-like": d695_like(),
        "random-a": random_test_params(101, num_cores=10),
        "random-b": random_test_params(202, num_cores=12,
                                       bist_fraction=0.3),
    }

    def compare_all():
        rows = []
        for name, cores in workloads.items():
            for n in (4, 8, 16):
                comparison = compare_reconfiguration(cores, n)
                rows.append((
                    name, n,
                    comparison.reconfig_total,
                    comparison.static_total,
                    f"{comparison.speedup:.2f}",
                    f"{comparison.config_overhead_fraction:.3%}",
                ))
        return rows

    rows = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    emit(format_table(
        ("workload", "N", "reconfigured", "static", "speedup",
         "config overhead"),
        rows,
        title="C3 -- reconfigured CAS-BUS vs static partition "
              "(total cycles)",
    ))
    speedups = [float(row[4]) for row in rows]
    # The reconfigurable TAM subsumes the static design (it can copy
    # the static partition with a single configuration pass), so it is
    # never worse by more than that one pass...
    assert all(s >= 0.99 for s in speedups), speedups
    # ...and heterogeneous workloads reward reconfiguration heavily.
    assert max(speedups) > 1.5


def test_reconfiguration_cost_simulated(benchmark):
    """Measured serial reconfiguration cost on a live system: the cost
    of switching the two-core SoC between wire assignments mid-program.
    """

    def run():
        system = build_system(small_soc())
        executor = SessionExecutor(system)
        plan = (PlanBuilder()
                .add_session(flat_assignment("alpha", (0, 1)),
                             label="config-A")
                .add_session(flat_assignment("alpha", (2, 0)),
                             label="config-B (reconfigured)")
                .build())
        return executor.run_plan(plan)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    rows = [
        (s.label, s.config_cycles, s.test_cycles)
        for s in result.sessions
    ]
    emit(format_table(
        ("session", "config cycles", "test cycles"),
        rows,
        title="C3 -- measured per-session reconfiguration cost "
              "(same core, different wires)",
    ))
    # Identical test time either way; only the reconfiguration is paid.
    assert result.sessions[0].test_cycles == result.sessions[1].test_cycles
