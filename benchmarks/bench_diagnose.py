"""Adaptive diagnosis: cycle economics and zero-cost syndrome capture.

Two gates ride in the benchmark-smoke job:

* **adaptive beats naive** -- localising a seeded stuck-at via the
  reconfigurable CAS-BUS (solo probe sessions on re-routed wires) must
  cost strictly fewer test cycles than naively re-running the full
  schedule of every suspect core;
* **capture is free when off (and cycle-free when on)** -- the
  ``capture_syndromes`` flag never changes a program's cycle counts,
  and the off path produces results byte-identical to the pre-flag
  executor (``syndrome=None`` everywhere).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.tam import CasBusTamDesign
from repro.diagnose.engine import diagnose_soc
from repro.diagnose.inject import random_scenario
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.itc02 import benchmark_soc

from conftest import emit

#: Scenario seeds diagnosed per workload (table rows).
SCENARIO_SEEDS = (1, 7)


def test_adaptive_diagnosis_beats_full_retest(benchmark):
    """Seeded stuck-ats on d695: diagnosis cycles << full re-test."""
    soc = benchmark_soc("d695")
    scenarios = [
        random_scenario(soc, seed) for seed in SCENARIO_SEEDS
    ]
    # Warm the shared caches (ATPG, dictionaries) so the benchmark
    # measures the diagnosis flow, not one-time generation.
    diagnose_soc(soc, scenarios[0])

    def run():
        return [diagnose_soc(soc, scenario) for scenario in scenarios]

    results = benchmark(run)
    rows = []
    for scenario, result in zip(scenarios, results):
        rank = result.scenario_rank()
        rows.append((
            scenario.describe(),
            result.localized_core,
            rank,
            result.diagnosis_cycles,
            result.full_retest_cycles,
            f"{result.diagnosis_cycles / result.full_retest_cycles:.1%}",
        ))
        assert result.localized_core == scenario.core
        assert rank is not None and rank <= 5
        # The gate: adaptive reconfiguration diagnosis must be
        # strictly cheaper than re-testing every suspect the naive
        # way (re-running the whole schedule).
        assert result.diagnosis_cycles < result.full_retest_cycles
    emit(format_table(
        ("scenario", "localized", "rank", "diag cyc", "full cyc",
         "ratio"),
        rows,
        title="adaptive diagnosis vs full re-test -- itc02_d695",
    ))


def test_syndrome_capture_off_matches_old_cycle_counts(benchmark):
    """The flag is opt-in: off == the historical executor, bit for
    bit, and cycle counts are identical either way."""
    soc = benchmark_soc("g1023")
    victim = soc.cores[2].name
    from repro.bist.engine import random_detectable_fault

    fault = random_detectable_fault(
        soc.core_named(victim).build_scannable(), seed=5
    )
    plan = CasBusTamDesign.for_soc(soc).executable_plan()

    def run_with(capture):
        executor = SessionExecutor(
            build_system(soc, inject_faults={victim: fault}),
            capture_syndromes=capture,
        )
        return executor.run_plan(plan)

    run_with(False)  # warm caches outside the timed region

    off = benchmark(lambda: run_with(False))
    on = run_with(True)
    assert off.total_cycles == on.total_cycles
    assert off.config_cycles == on.config_cycles
    assert off.test_cycles == on.test_cycles
    for plain, captured in zip(off.core_results(), on.core_results()):
        assert plain.syndrome is None
        assert plain.mismatches == captured.mismatches
        assert plain.bits_compared == captured.bits_compared
    emit(
        f"syndrome capture off == old cycle counts: "
        f"{off.total_cycles} cycles either way "
        f"({sum(1 for r in on.core_results() if not r.passed)} failing "
        f"core(s) carrying syndromes when on)"
    )
