"""Vectorized batch kernel vs per-scenario scalar dispatch.

The batch executor (:mod:`repro.sim.batch`) exists for one reason:
Monte-Carlo defect sweeps and fault-dictionary builds run the *same*
compiled program geometry thousands of times with only the scenario
varying, and per-scenario Python dispatch re-pays the whole
interpreter cost every time.  These benchmarks run identical scenario
batches through one batch dispatch and through a scalar per-scenario
loop, assert byte-identical results, and gate the wall-clock ratio --
the PR-gating target is >= 5x at N=256 scenarios, with batch-of-1
overhead bounded at 2x a plain scalar run.
"""

from __future__ import annotations

import os
import time

import pytest

pytest.importorskip("numpy")

from repro.analysis.tables import format_table
from repro.bist.engine import random_detectable_fault
from repro.core.tam import CasBusTamDesign
from repro.diagnose.engine import fault_dictionary
from repro.sim.batch import BatchExecutor
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import fig1_soc

from conftest import emit

#: Required batch-vs-scalar ratio at N=256 scenarios.  5x on a quiet
#: machine (the PR gate); CI smoke jobs on noisy shared runners export
#: a lower BATCH_SPEEDUP_GATE so scheduler jitter cannot flake the
#: build while gross regressions still trip it.
SPEEDUP_GATE = float(os.environ.get("BATCH_SPEEDUP_GATE", "5.0"))

#: Allowed batch-of-1 wall-clock overhead over one scalar run.
OVERHEAD_GATE = float(os.environ.get("BATCH_OVERHEAD_GATE", "2.0"))


def _sweep_scenarios(soc, count):
    """A stuck-at Monte-Carlo sweep: clean plus seeded scan faults."""
    victims = [core for core in soc.cores if core.method.value == "scan"]
    scenarios = [None]
    for index in range(count - 1):
        victim = victims[index % len(victims)]
        fault = random_detectable_fault(
            victim.build_scannable(), seed=index
        )
        scenarios.append({victim.name: fault})
    return scenarios


def _scalar_sweep(soc, plan, scenarios):
    results = []
    for scenario in scenarios:  # RL005: the measured scalar baseline
        executor = SessionExecutor(
            build_system(soc, inject_faults=scenario)
        )
        results.append(executor.run_plan(plan))
    return results


def test_batch_sweep_speedup(benchmark):
    """One dispatch for 256 scenarios vs 256 scalar kernel runs."""
    soc = fig1_soc()
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    scenarios = _sweep_scenarios(soc, 256)
    # Warm every shared cache (ATPG, compiled programs, batch arrays)
    # so both paths are measured steady-state.
    BatchExecutor(soc).run_batch(plan, scenarios[:2])
    _scalar_sweep(soc, plan, scenarios[:2])

    def run():
        start = time.perf_counter()
        batch = BatchExecutor(soc).run_batch(plan, scenarios)
        batch_s = time.perf_counter() - start
        start = time.perf_counter()
        scalar = _scalar_sweep(soc, plan, scenarios)
        scalar_s = time.perf_counter() - start
        return batch, scalar, batch_s, scalar_s

    batch, scalar, batch_s, scalar_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert batch == scalar, "batch diverged from scalar sweep"
    assert not batch[1].passed  # the faulty scenarios really fail
    speedup = scalar_s / batch_s
    emit(format_table(
        ("path", "s / 256 scenarios", "speedup"),
        [
            ("scalar loop", f"{scalar_s:.3f}", "1.0x"),
            ("batch dispatch", f"{batch_s:.3f}", f"{speedup:.1f}x"),
        ],
        title="batch kernel vs per-scenario dispatch -- fig-1 SoC",
    ))
    assert speedup >= SPEEDUP_GATE, (
        f"batch speedup {speedup:.1f}x < {SPEEDUP_GATE}x"
    )


def test_batch_of_one_overhead(benchmark):
    """A batch of one scenario must stay close to a plain scalar run:
    the vector path may not tax the common single-run case."""
    soc = fig1_soc()
    plan = CasBusTamDesign.for_soc(soc).executable_plan()
    scenarios = _sweep_scenarios(soc, 2)[1:]
    BatchExecutor(soc).run_batch(plan, scenarios)  # warm
    _scalar_sweep(soc, plan, scenarios)

    def run(repeats=5):
        batch_s = scalar_s = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            batch = BatchExecutor(soc).run_batch(plan, scenarios)
            batch_s += time.perf_counter() - start
            start = time.perf_counter()
            scalar = _scalar_sweep(soc, plan, scenarios)
            scalar_s += time.perf_counter() - start
            assert batch == scalar
        return batch_s / repeats, scalar_s / repeats

    batch_s, scalar_s = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = batch_s / scalar_s
    emit(f"batch-of-1: {batch_s * 1e3:.2f} ms vs scalar "
         f"{scalar_s * 1e3:.2f} ms ({overhead:.2f}x)")
    assert overhead <= OVERHEAD_GATE, (
        f"batch-of-1 overhead {overhead:.2f}x > {OVERHEAD_GATE}x"
    )


def test_dictionary_build_uses_batch_path(benchmark):
    """Fault-dictionary construction rides the pattern-parallel batch
    simulation; steady-state rebuild of a scan dictionary stays fast
    and its entries keep the schema the diagnosis engine matches on."""
    soc = fig1_soc()
    spec = soc.core_named("core2")
    fault_dictionary(spec)  # warm ATPG + batch arrays

    from repro.diagnose.engine import clear_dictionary_cache

    def run():
        clear_dictionary_cache()
        return fault_dictionary(spec)

    dictionary = benchmark.pedantic(run, rounds=1, iterations=3)
    assert dictionary
    emit(f"core2 dictionary: {len(dictionary)} syndrome "
         f"classes from the vectorized batch path")
