"""Experiment F1 -- figure 1: the six-core CAS-BUS SoC, executed.

Figure 1 is an architecture diagram; its reproduction is executable:
the depicted SoC (six cores covering all four test types plus the
wrapped system bus with its dedicated CAS) is built, its TAM generated,
and a complete test program -- configuration chains, switch schemes,
scan/BIST/external payloads, hierarchical descent -- is simulated
cycle-accurately.  Every core must pass, and the cycle budget is
reported per session.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.tam import CasBusTamDesign
from repro.soc.library import fig1_soc

from conftest import emit


def test_fig1_full_test_program(benchmark):
    tam = CasBusTamDesign.for_soc(fig1_soc())

    result = benchmark.pedantic(tam.run, rounds=1, iterations=1)

    assert result.passed
    rows = []
    for session in result.sessions:
        for core in session.core_results:
            rows.append((
                session.label,
                core.name,
                core.method,
                "pass" if core.passed else "FAIL",
                core.bits_compared,
                core.detail,
            ))
    emit(format_table(
        ("session", "core", "method", "result", "bits", "detail"),
        rows,
        title=(
            f"Figure 1 SoC -- full test program: "
            f"{result.total_cycles} cycles "
            f"({result.config_cycles} config + {result.test_cycles} test)"
        ),
    ))
    emit(format_table(
        ("metric", "value"),
        (
            ("CAS instances", len(tam.cas_designs)),
            ("total CAS cells", tam.total_cas_cells),
            ("total CAS area (GE)", tam.total_cas_ge),
            ("config chain bits", tam.total_config_bits),
        ),
        title="TAM hardware generated for the figure 1 SoC",
    ))
    # All four core test types exercised, all passing.
    methods = {c.method for c in result.core_results()}
    assert methods == {"scan", "bist", "external"}
    assert len(result.core_results()) == 8
