"""Experiment C6 -- section 4: SoC interconnect test over the CAS-BUS.

"In the same way, SoC interconnect test time can be optimized when
adopting a good configuration of the test chains."

Runs the EXTEST interconnect test (true/complement counting sequence
through the boundary registers) on a three-core SoC with four nets:
clean silicon passes, and every modelled interconnect defect class
(stuck-at, open, pairwise short) is detected and localised to the
right net(s).
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.sim.session import SessionExecutor
from repro.sim.system import build_system
from repro.soc.library import interconnect_demo_soc

from conftest import emit


def test_clean_interconnects(benchmark):
    soc = interconnect_demo_soc()

    def run():
        executor = SessionExecutor(build_system(soc))
        return executor.run_interconnect_test()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.passed
    rows = [
        (r.name, r.detail, "pass" if r.passed else "FAIL",
         r.bits_compared)
        for r in result.core_results
    ]
    emit(format_table(
        ("net", "route", "result", "bits"),
        rows,
        title=(
            f"C6 -- interconnect test (EXTEST): "
            f"{result.config_cycles} config + {result.test_cycles} "
            f"test cycles"
        ),
    ))


def test_interconnect_defect_localisation(benchmark):
    soc = interconnect_demo_soc()
    cases = (
        ({"n0": "sa0"}, {"n0"}),
        ({"n1": "sa1"}, {"n1"}),
        ({"n2": "open"}, {"n2"}),
        (({("n0", "n1"): "short"}), {"n0", "n1"}),
        (({("n1", "n2"): "short"}), {"n1", "n2"}),
        ({"n0": "sa1", "n3": "open"}, {"n0", "n3"}),
    )

    def run_all():
        outcomes = []
        for faults, expected in cases:
            executor = SessionExecutor(
                build_system(soc, interconnect_faults=faults)
            )
            result = executor.run_interconnect_test()
            failing = {r.name for r in result.core_results
                       if not r.passed}
            outcomes.append((faults, expected, failing))
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for faults, expected, failing in outcomes:
        rows.append((
            str(faults),
            "/".join(sorted(expected)),
            "/".join(sorted(failing)),
            "ok" if failing == expected else "WRONG",
        ))
        assert failing == expected, (faults, failing)
    emit(format_table(
        ("injected defect", "expected nets", "flagged nets", "verdict"),
        rows,
        title="C6 -- interconnect defect localisation",
    ))
