"""Store backend scaling: indexed SQLite versus the JSONL scan.

The SQLite backend's contract is that the operations a campaign
performs constantly -- resume-skip lookups, filtered reports, summary
aggregation -- stop scaling with store size.  This benchmark populates
both backends with the same 10^5-record corpus and measures the three
operations head to head, gating the headline claim: a filtered report
off the secondary indexes beats the JSONL full scan by at least
``STORE_SPEEDUP_GATE`` (default 10x; CI overrides it looser because
shared runners are noisy).

Every measurement opens a *fresh* store handle: the JSONL backend
caches parsed records per instance, and a cached scan would flatter
exactly the cost this benchmark exists to expose.
"""

from __future__ import annotations

import hashlib
import os
import time

import pytest

from repro.analysis.tables import format_table
from repro.api.results import SCHEMA_VERSION
from repro.campaign import CampaignStore, SqliteStore

from conftest import emit

#: Corpus size; 10^5 records is the scale the tentpole claim is made at.
RECORDS = int(os.environ.get("STORE_BENCH_RECORDS", "100000"))

#: Distinct workloads the corpus spreads over (so a filtered report
#: selects a 1/50 slice, the realistic "one workload of many" shape).
WORKLOADS = 50

#: Minimum indexed-report speedup over the JSONL scan.
SPEEDUP_GATE = float(os.environ.get("STORE_SPEEDUP_GATE", "10"))

#: Batch size of the append-throughput and resume-lookup measurements.
BATCH = 1000


def _record(index: int) -> dict:
    workload = f"wl-{index % WORKLOADS:02d}"
    return {
        "schema": SCHEMA_VERSION,
        "hash": hashlib.sha256(f"bench-{index}".encode()).hexdigest(),
        "workload": {"kind": "cores", "name": workload},
        "config": {"architecture": "casbus", "scheduler": "greedy"},
        "result": {
            "architecture": "casbus",
            "area_ge": 1.0,
            "bus_width": 8,
            "config_cycles": 4,
            "extra_pins": 8,
            "label": "",
            "passed": None,
            "scheduler": "greedy",
            "sessions": [],
            "source": "model",
            "test_cycles": index,
            "workload": workload,
        },
        "elapsed_s": 0.001,
    }


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Both backends holding the same RECORDS-record corpus."""
    root = tmp_path_factory.mktemp("store-bench")
    records = [_record(index) for index in range(RECORDS)]
    jsonl = CampaignStore(root / "corpus.jsonl")
    jsonl.write_all(records)
    sqlite = SqliteStore(root / "corpus.sqlite")
    sqlite.write_all(records)
    assert len(SqliteStore(sqlite.path)) == RECORDS
    return root


def _timed(operation, *args):
    start = time.perf_counter()
    result = operation(*args)
    return result, time.perf_counter() - start


def test_append_throughput(corpus, benchmark):
    """Batch appends on both backends, records per second."""
    fresh = [_record(RECORDS + index) for index in range(BATCH)]

    counter = iter(range(10_000))

    def sqlite_batch():
        path = corpus / f"append-{next(counter)}.sqlite"
        return SqliteStore(path).append_many(fresh)

    stored = benchmark.pedantic(sqlite_batch, rounds=3, iterations=1)
    assert stored == BATCH
    _, sqlite_s = _timed(sqlite_batch)
    _, jsonl_s = _timed(
        lambda: CampaignStore(
            corpus / f"append-{next(counter)}.jsonl"
        ).append_many(fresh)
    )
    emit(format_table(
        ("backend", "records/s"),
        [
            ("jsonl", f"{BATCH / jsonl_s:,.0f}"),
            ("sqlite", f"{BATCH / sqlite_s:,.0f}"),
        ],
        title=f"append_many of {BATCH} records (one durability barrier)",
    ))


def test_indexed_report_speedup(corpus, benchmark):
    """A one-workload filtered report: index lookup versus full scan.

    This is the ``repro report --workload X`` path.  The SQLite side
    reads only the ~RECORDS/WORKLOADS matching rows off the workload
    index; the JSONL side has no choice but to parse everything.
    """
    expected = RECORDS // WORKLOADS

    def sqlite_report():
        store = SqliteStore(corpus / "corpus.sqlite")
        return list(store.iter_latest(workload="wl-07"))

    rows = benchmark.pedantic(sqlite_report, rounds=3, iterations=1)
    assert len(rows) == expected
    _, sqlite_s = _timed(sqlite_report)

    def jsonl_report():
        store = CampaignStore(corpus / "corpus.jsonl")
        return list(store.iter_latest(workload="wl-07"))

    scanned, jsonl_s = _timed(jsonl_report)
    assert len(scanned) == expected
    assert {r["hash"] for r in scanned} == {r["hash"] for r in rows}

    def sqlite_summary():
        return SqliteStore(corpus / "corpus.sqlite").aggregate_counts()

    counts, summary_s = _timed(sqlite_summary)
    assert sum(counts.values()) == RECORDS

    speedup = jsonl_s / sqlite_s if sqlite_s else float("inf")
    emit(format_table(
        ("operation", "ms", "records touched"),
        [
            ("jsonl filtered report (scan)", f"{jsonl_s * 1e3:.1f}",
             RECORDS),
            ("sqlite filtered report (index)", f"{sqlite_s * 1e3:.1f}",
             expected),
            ("sqlite summary (aggregates)", f"{summary_s * 1e3:.2f}",
             0),
        ],
        title=f"report over {RECORDS:,} records ({speedup:.1f}x)",
    ))
    assert jsonl_s >= SPEEDUP_GATE * sqlite_s, (
        f"indexed report only {speedup:.1f}x faster than the scan "
        f"(gate: {SPEEDUP_GATE}x over {RECORDS:,} records)"
    )


def test_resume_lookup_vs_scan(corpus, benchmark):
    """The resume-skip primitive: O(batch) lookup versus O(store) scan."""
    wanted = [_record(index)["hash"] for index in range(0, RECORDS,
                                                       RECORDS // BATCH)]

    def sqlite_lookup():
        return SqliteStore(corpus / "corpus.sqlite").lookup(wanted)

    found = benchmark.pedantic(sqlite_lookup, rounds=3, iterations=1)
    assert len(found) == len(wanted)
    _, sqlite_s = _timed(sqlite_lookup)
    scanned, jsonl_s = _timed(
        lambda: CampaignStore(corpus / "corpus.jsonl").lookup(wanted)
    )
    assert scanned.keys() == found.keys()
    emit(format_table(
        ("backend", "ms"),
        [
            ("jsonl (scan all records)", f"{jsonl_s * 1e3:.1f}"),
            ("sqlite (indexed lookup)", f"{sqlite_s * 1e3:.2f}"),
        ],
        title=f"resume-skip lookup of {len(wanted)} hashes "
              f"in {RECORDS:,} records",
    ))
    assert jsonl_s > sqlite_s, "indexed lookup should beat the full scan"
